// Distributed tracing: span parenting and serialization, the span tree of a
// cross-node CREATE, and the headline determinism guarantee — two same-seed
// chaos runs emit byte-identical trace streams and metrics snapshots.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/tracing.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

TEST(Tracer, StackParentingAndExplicitParents) {
  SimClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);

  const TraceContext root = tracer.begin_span("op", 0);
  EXPECT_NE(root.trace_id, 0u);
  clock.advance(SimDuration::micros(5));
  const TraceContext child = tracer.begin_span("op.child", 1);
  EXPECT_EQ(child.trace_id, root.trace_id);
  tracer.tag("k", "v");
  tracer.end_span();
  // An explicit parent (the context an RPC carried) wins over the stack.
  tracer.end_span();
  const TraceContext remote = tracer.begin_span_under(child, "op.remote", 2);
  EXPECT_EQ(remote.trace_id, root.trace_id);
  tracer.set_status("NFS3ERR_IO");
  tracer.end_span();
  EXPECT_EQ(tracer.open_depth(), 0u);

  // Spans close LIFO, so the child finished first.
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "op.child");
  EXPECT_EQ(spans[0].parent_id, root.span_id);
  ASSERT_EQ(spans[0].tags.size(), 1u);
  EXPECT_EQ(spans[0].tags[0], (std::pair<std::string, std::string>{"k", "v"}));
  EXPECT_EQ(spans[0].start_ns, 5000);
  EXPECT_EQ(spans[1].name, "op");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[2].name, "op.remote");
  EXPECT_EQ(spans[2].parent_id, child.span_id);
  EXPECT_EQ(spans[2].status, "NFS3ERR_IO");
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  SimClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);  // enabled() still false
  {
    SpanScope span(&tracer, "op", 0);
    EXPECT_FALSE(span.active());
    span.tag("k", "v");
    span.status("err");
  }
  SpanScope null_span(nullptr, "op", 0);
  EXPECT_FALSE(null_span.active());
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(Tracer, JsonlRoundTripsThroughParser) {
  SimClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);
  {
    SpanScope outer(&tracer, "outer", 3);
    outer.tag("path", "/a \"b\"");  // escaping must survive the round trip
    clock.advance(SimDuration::micros(10));
    SpanScope inner(&tracer, "inner", 4);
    inner.status("NFS3ERR_STALE");
  }
  const std::string jsonl = tracer.to_jsonl();
  const auto parsed = parse_trace_jsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().size(), 2u);
  for (std::size_t i = 0; i < parsed.value().size(); ++i) {
    const SpanRecord& a = tracer.spans()[i];
    const SpanRecord& b = parsed.value()[i];
    EXPECT_EQ(a.trace_id, b.trace_id);
    EXPECT_EQ(a.span_id, b.span_id);
    EXPECT_EQ(a.parent_id, b.parent_id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.host, b.host);
    EXPECT_EQ(a.start_ns, b.start_ns);
    EXPECT_EQ(a.end_ns, b.end_ns);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.tags, b.tags);
  }
}

const SpanRecord* find_span(const std::vector<SpanRecord>& spans, std::string_view name) {
  const auto it = std::find_if(spans.begin(), spans.end(),
                               [&](const SpanRecord& s) { return s.name == name; });
  return it != spans.end() ? &*it : nullptr;
}

TEST(Tracing, CrossNodeCreateYieldsFullSpanTree) {
  ClusterConfig config;
  config.nodes = 4;
  config.kosha.replicas = 2;
  config.seed = 42;
  config.observability.tracing = true;
  KoshaCluster cluster(config);

  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/home/alice").ok());
  cluster.tracer().clear();  // isolate the CREATE's trace
  ASSERT_TRUE(mount.write_file("/home/alice/report.txt", "hello").ok());

  const auto& spans = cluster.tracer().spans();
  const SpanRecord* root = find_span(spans, "mount.write_file");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->host, 0u);

  // mount -> koshad -> client RPC -> remote server: one trace, one chain.
  const SpanRecord* create = find_span(spans, "koshad.create");
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->parent_id, root->span_id);
  const SpanRecord* rpc = find_span(spans, "nfs.CREATE");
  ASSERT_NE(rpc, nullptr);
  EXPECT_EQ(rpc->parent_id, create->span_id);
  const SpanRecord* server = find_span(spans, "server.create");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->parent_id, rpc->span_id);
  // With this seed the file's anchor hashes to another node: the server
  // span ran where the primary lives, not on the client host.
  EXPECT_NE(server->host, root->host);

  // Replica fan-out: one mirror span per replica, under the create, running
  // on the primary.
  std::vector<const SpanRecord*> mirrors;
  for (const SpanRecord& span : spans) {
    if (span.name == "replica.mirror" && span.parent_id == create->span_id) {
      mirrors.push_back(&span);
    }
  }
  ASSERT_EQ(mirrors.size(), 2u);
  for (const SpanRecord* mirror : mirrors) {
    EXPECT_EQ(mirror->trace_id, root->trace_id);
    EXPECT_EQ(mirror->host, server->host);
  }

  const std::string forest = render_span_forest(spans);
  EXPECT_NE(forest.find("mount.write_file"), std::string::npos);
  EXPECT_NE(forest.find("server.create"), std::string::npos);
  EXPECT_NE(forest.find("replica.mirror"), std::string::npos);
}

/// One seeded chaos run: drops + a brownout + a crash/revive over a mixed
/// workload, with full observability on. Returns the exported trace stream
/// and metrics snapshot.
std::pair<std::string, std::string> chaos_run(std::uint64_t seed) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.seed = seed;
  config.observability.metrics = true;
  config.observability.tracing = true;
  KoshaCluster cluster(config);

  net::FaultPlanConfig fault;
  fault.seed = seed + 7;
  fault.drop_probability = 0.02;
  cluster.network().set_fault_plan(std::make_unique<net::FaultPlan>(fault));
  const SimDuration start = cluster.clock().now();
  cluster.network().fault_plan()->add_brownout(2, start, start + SimDuration::seconds(1));

  KoshaMount mount(&cluster.daemon(0));
  Rng rng(seed ^ 0xFA17ull);
  for (int i = 0; i < 40; ++i) {
    const std::string dir = "/c" + std::to_string(rng.next_below(4));
    const std::string file = dir + "/f" + std::to_string(rng.next_below(6));
    // Mixed-outcome churn: a brownout and a node failure are injected
    // mid-loop, so individual ops are free to fail — the assertions below
    // are about the spans the ops emit, not their statuses.
    if (rng.next_bool(0.4)) {
      // kosha-lint: allow(ignore-status): churn workload; ops may fail by design, only emitted spans are asserted
      (void)mount.mkdir_p(dir);
      // kosha-lint: allow(ignore-status): churn workload; ops may fail by design, only emitted spans are asserted
      (void)mount.write_file(file, rng.next_name(16));
    } else if (rng.next_bool(0.5)) {
      // kosha-lint: allow(ignore-status): churn workload; ops may fail by design, only emitted spans are asserted
      (void)mount.read_file(file);
    } else {
      // kosha-lint: allow(ignore-status): churn workload; ops may fail by design, only emitted spans are asserted
      (void)mount.stat(file);
    }
    if (i == 20) cluster.fail_node(cluster.live_hosts().back());
    cluster.clock().advance(SimDuration::millis(50));
  }
  return {cluster.export_trace_jsonl(), cluster.export_metrics_json()};
}

TEST(Tracing, SameSeedChaosRunsAreByteIdentical) {
  const auto [trace_a, metrics_a] = chaos_run(1234);
  const auto [trace_b, metrics_b] = chaos_run(1234);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(metrics_a, metrics_b);

  // A different seed must actually change the streams (the equality above
  // is not vacuous).
  const auto [trace_c, metrics_c] = chaos_run(99);
  EXPECT_NE(trace_a, trace_c);
  EXPECT_NE(metrics_a, metrics_c);
}

}  // namespace
}  // namespace kosha

// Ablation: serving reads from replicas (the paper's §4.2 future-work
// optimization, off in the evaluated system). Several clients hammer one
// hot directory; we report how read RPCs spread across the storage nodes
// and the total virtual time, with the optimization off vs on.
//
// Flags: --clients N (default 4), --reads N per client (default 200),
// --replicas K (default 3).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "trace/mab.hpp"

namespace {

using namespace kosha;

struct Outcome {
  double elapsed_s = 0;
  double hot_node_share = 0;  // fraction of read RPCs hitting the busiest node
  std::uint64_t replica_reads = 0;
};

Outcome run(bool read_from_replicas, std::size_t clients, std::size_t reads,
            unsigned replicas) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 1;
  config.kosha.replicas = replicas;
  config.kosha.read_from_replicas = read_from_replicas;
  config.seed = 77;
  KoshaCluster cluster(config);

  KoshaMount setup(&cluster.daemon(0));
  (void)setup.mkdir_p("/hot");
  for (int i = 0; i < 16; ++i) {
    if (!setup
             .write_file("/hot/f" + std::to_string(i),
                         trace::mab_content(32 * 1024, static_cast<std::uint64_t>(i)))
             .ok()) {
      std::fprintf(stderr, "ablation_read_replicas: seeding /hot failed\n");
      std::exit(1);
    }
  }
  const std::vector<std::uint64_t> rpc_before = [&] {
    std::vector<std::uint64_t> counts;
    for (const auto host : cluster.live_hosts()) {
      counts.push_back(cluster.server(host).rpc_count());
    }
    return counts;
  }();

  const SimStopwatch watch(cluster.clock());
  std::uint64_t replica_reads = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    KoshaMount mount(&cluster.daemon(static_cast<net::HostId>(c)));
    for (std::size_t r = 0; r < reads; ++r) {
      if (!mount.read_file("/hot/f" + std::to_string(r % 16)).ok()) {
        std::fprintf(stderr, "ablation_read_replicas: measured read failed\n");
        std::exit(1);
      }
    }
    replica_reads += cluster.daemon(static_cast<net::HostId>(c)).stats().replica_reads;
  }

  Outcome outcome;
  outcome.elapsed_s = watch.elapsed().to_seconds();
  outcome.replica_reads = replica_reads;
  std::uint64_t total = 0;
  std::uint64_t hottest = 0;
  const auto hosts = cluster.live_hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const std::uint64_t delta = cluster.server(hosts[i]).rpc_count() - rpc_before[i];
    total += delta;
    hottest = std::max(hottest, delta);
  }
  outcome.hot_node_share = total == 0 ? 0 : static_cast<double>(hottest) /
                                                static_cast<double>(total);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const kosha::CliArgs args(argc, argv);
  if (const auto err = args.check_known("clients,reads,replicas"); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const auto clients = static_cast<std::size_t>(args.get_int("clients", 4));
  const auto reads = static_cast<std::size_t>(args.get_int("reads", 200));
  const auto replicas = static_cast<unsigned>(args.get_int("replicas", 3));

  std::printf("Ablation: read-from-replicas (paper §4.2 future work)\n");
  std::printf("%zu clients x %zu reads of a hot directory, K=%u replicas\n\n", clients, reads,
              replicas);

  const Outcome off = run(false, clients, reads, replicas);
  const Outcome on = run(true, clients, reads, replicas);

  kosha::TextTable table({"mode", "virtual time", "hottest-node share", "replica reads"});
  table.add_row({"primary-only", kosha::TextTable::fmt(off.elapsed_s, 3) + "s",
                 kosha::TextTable::pct(off.hot_node_share), std::to_string(off.replica_reads)});
  table.add_row({"read-replicas", kosha::TextTable::fmt(on.elapsed_s, 3) + "s",
                 kosha::TextTable::pct(on.hot_node_share), std::to_string(on.replica_reads)});
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nSpreading reads over K+1 copies cuts the hottest node's share of the\n"
              "RPC load (ideal: %s); total time is similar on a uniform LAN.\n",
              kosha::TextTable::pct(1.0 / (replicas + 1)).c_str());
  return 0;
}

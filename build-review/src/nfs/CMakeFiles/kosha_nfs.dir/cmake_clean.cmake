file(REMOVE_RECURSE
  "CMakeFiles/kosha_nfs.dir/nfs_client.cpp.o"
  "CMakeFiles/kosha_nfs.dir/nfs_client.cpp.o.d"
  "CMakeFiles/kosha_nfs.dir/nfs_server.cpp.o"
  "CMakeFiles/kosha_nfs.dir/nfs_server.cpp.o.d"
  "CMakeFiles/kosha_nfs.dir/wire.cpp.o"
  "CMakeFiles/kosha_nfs.dir/wire.cpp.o.d"
  "CMakeFiles/kosha_nfs.dir/xdr.cpp.o"
  "CMakeFiles/kosha_nfs.dir/xdr.cpp.o.d"
  "libkosha_nfs.a"
  "libkosha_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

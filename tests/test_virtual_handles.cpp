// Virtual-handle table tests (paper §4.1.2).

#include <gtest/gtest.h>

#include "kosha/virtual_handles.hpp"

namespace kosha {
namespace {

nfs::FileHandle handle(net::HostId host, fs::InodeId inode) { return {host, inode, 1}; }

TEST(VirtualHandles, BindAndFind) {
  VirtualHandleTable table;
  const VirtualHandle vh = table.bind("/a/f", "/.a/a/a/f", handle(2, 10), fs::FileType::kFile);
  EXPECT_TRUE(vh.valid());
  const VhEntry* entry = table.find(vh);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->path, "/a/f");
  EXPECT_EQ(entry->stored_path, "/.a/a/a/f");
  EXPECT_EQ(entry->real.server, 2u);
  EXPECT_EQ(table.find_by_path("/a/f"), vh);
}

TEST(VirtualHandles, RebindingSamePathKeepsHandle) {
  VirtualHandleTable table;
  const VirtualHandle vh = table.bind("/a", "/s1", handle(1, 1), fs::FileType::kDirectory);
  const VirtualHandle again = table.bind("/a", "/s2", handle(3, 9), fs::FileType::kDirectory);
  EXPECT_EQ(vh, again);
  EXPECT_EQ(table.find(vh)->real.server, 3u);
  EXPECT_EQ(table.find(vh)->stored_path, "/s2");
  EXPECT_EQ(table.size(), 1u);
}

TEST(VirtualHandles, InvalidLookups) {
  VirtualHandleTable table;
  EXPECT_EQ(table.find(VirtualHandle{77}), nullptr);
  EXPECT_FALSE(table.find_by_path("/nope").has_value());
  EXPECT_FALSE(table.rebind(VirtualHandle{77}, "/x", handle(1, 1)));
}

TEST(VirtualHandles, RebindSwapsRealHandleTransparently) {
  VirtualHandleTable table;
  const VirtualHandle vh = table.bind("/a/f", "/s", handle(1, 5), fs::FileType::kFile);
  EXPECT_TRUE(table.rebind(vh, "/s2", handle(4, 6)));
  EXPECT_EQ(table.find(vh)->real.server, 4u);
  EXPECT_EQ(table.find(vh)->path, "/a/f");  // virtual identity preserved
}

TEST(VirtualHandles, DropSingle) {
  VirtualHandleTable table;
  const VirtualHandle vh = table.bind("/a", "/s", handle(1, 1), fs::FileType::kDirectory);
  table.drop(vh);
  EXPECT_EQ(table.find(vh), nullptr);
  EXPECT_FALSE(table.find_by_path("/a").has_value());
  table.drop(vh);  // idempotent
}

TEST(VirtualHandles, DropSubtree) {
  VirtualHandleTable table;
  const auto keep = table.bind("/ax", "/s0", handle(1, 1), fs::FileType::kDirectory);
  const auto root = table.bind("/a", "/s1", handle(1, 2), fs::FileType::kDirectory);
  const auto child = table.bind("/a/b", "/s2", handle(1, 3), fs::FileType::kDirectory);
  const auto grand = table.bind("/a/b/c", "/s3", handle(1, 4), fs::FileType::kFile);
  table.drop_subtree("/a");
  EXPECT_EQ(table.find(root), nullptr);
  EXPECT_EQ(table.find(child), nullptr);
  EXPECT_EQ(table.find(grand), nullptr);
  EXPECT_NE(table.find(keep), nullptr);  // "/ax" is not inside "/a"
}

TEST(VirtualHandles, HandlesAreNeverReusedAcrossPaths) {
  VirtualHandleTable table;
  const auto a = table.bind("/a", "/s", handle(1, 1), fs::FileType::kFile);
  table.drop(a);
  const auto b = table.bind("/b", "/s", handle(1, 2), fs::FileType::kFile);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace kosha

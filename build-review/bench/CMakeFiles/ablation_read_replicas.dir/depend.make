# Empty dependencies file for ablation_read_replicas.
# This may be replaced when dependencies are built.

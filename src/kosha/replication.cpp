#include "kosha/replication.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/path.hpp"
#include "common/tracing.hpp"
#include "kosha/placement.hpp"

namespace kosha {

namespace {

/// Split a stored path into (parent path, leaf name).
std::pair<std::string, std::string> dir_and_name(const std::string& path) {
  return {path_parent(path), path_basename(path)};
}

/// Ensure a file exists at `path` with the given content (overwrite).
void put_file(fs::StorageBackend& store, const std::string& path, const std::string& content,
              std::uint32_t mode, std::uint32_t uid, std::uint32_t gid) {
  const auto [parent, name] = dir_and_name(path);
  const auto dir = store.mkdir_p(parent);
  if (!dir.ok()) return;
  auto inode = store.lookup(*dir, name);
  if (!inode.ok()) {
    const auto created = store.create(*dir, name, mode, uid, gid);
    if (!created.ok()) return;  // typically NOSPC: replica stays incomplete
    inode = created.value();
  }
  // A failed truncate or short write (NOSPC) leaves the replica copy
  // incomplete, exactly like a failed create above: nothing to do at this
  // layer, the audit pass re-pushes it.
  if (!store.truncate(*inode, 0).ok()) return;
  if (!store.write(*inode, 0, content).ok()) return;
}

}  // namespace

bool copy_subtree(Runtime& runtime, net::HostId src_host, fs::StorageBackend& src,
                  const std::string& src_path, net::HostId dst_host, fs::StorageBackend& dst,
                  const std::string& dst_path) {
  const auto root = src.resolve(src_path);
  if (!root.ok()) return true;  // nothing to copy
  const auto attr = src.getattr(*root);
  if (!attr.ok()) return true;

  if (attr->type == fs::FileType::kFile) {
    const auto content = src.read(*root, 0, static_cast<std::uint32_t>(attr->size));
    // An unreadable source (a corrupt block on a verifying CAS store) must
    // not clobber the destination's copy with fabricated content; leave it
    // for the replica path to serve and repair. Flat reads here never fail.
    if (!content.ok()) return true;
    std::uint64_t charge_bytes = attr->size;
    if (const auto blocks = src.file_blocks(*root); !blocks.empty()) {
      // Both ends speak blocks: transfer (charge) only what dst lacks.
      std::uint64_t missing = 0;
      bool delta = dst.kind() == src.kind();
      for (const auto& block : blocks) {
        if (!dst.has_block(block.id)) missing += block.bytes;
      }
      if (delta) charge_bytes = missing;
    }
    runtime.network->charge_message(src_host, dst_host, charge_bytes);
    put_file(dst, dst_path, content.value(), attr->mode, attr->uid, attr->gid);
    return true;
  }
  if (attr->type == fs::FileType::kSymlink) {
    const auto target = src.readlink(*root);
    runtime.network->charge_message(src_host, dst_host, 64);
    const auto [parent, name] = dir_and_name(dst_path);
    if (const auto dir = dst.mkdir_p(parent); dir.ok()) {
      // If the stale entry cannot be cleared the new link cannot land;
      // either failure leaves the copy incomplete for the audit to repair.
      if (dst.lookup(*dir, name).ok() && !dst.remove_recursive(*dir, name).ok()) {
        return true;
      }
      if (!dst.symlink(*dir, name, target.ok() ? target.value() : std::string{}).ok()) {
        return true;
      }
    }
    return true;
  }

  // Directory: create it, then copy children depth-first.
  runtime.network->charge_message(src_host, dst_host, 64);
  if (!dst.mkdir_p(dst_path).ok()) return true;
  const auto entries = src.readdir(*root);
  if (!entries.ok()) return true;
  for (const auto& entry : entries.value()) {
    if (src_path == "/" && entry.name == kReplicaArea) continue;  // never copy replicas
    if (runtime.migration_interrupt && runtime.migration_interrupt()) return false;
    if (!copy_subtree(runtime, src_host, src, path_child(src_path, entry.name), dst_host, dst,
                      path_child(dst_path, entry.name))) {
      return false;
    }
  }
  return true;
}

ReplicaManager::ReplicaManager(Runtime* runtime, net::HostId host, pastry::NodeId id)
    : runtime_(runtime), host_(host), id_(id) {
  assert(runtime_ != nullptr);
  if (MetricsRegistry* m = runtime_->metrics) {
    mirror_ops_ = m->counter("replica.mirror.ops");
    mirror_errors_ = m->counter("replica.mirror.errors");
    pushes_ = m->counter("replica.push.anchors");
    promotions_ = m->counter("replica.promotions");
    repairs_ = m->counter("replica.repairs");
    migrations_ = m->counter("replica.migrations");
    handoffs_ = m->counter("replica.handoffs");
  }
}

std::string ReplicaManager::hidden_root(pastry::NodeId primary) {
  return std::string("/") + kReplicaArea + "/" + primary.to_hex();
}

fs::StorageBackend& ReplicaManager::local_store() const {
  nfs::NfsServer* server = runtime_->servers->find(host_);
  assert(server != nullptr);
  return server->store();
}

fs::StorageBackend* ReplicaManager::store_of(net::HostId host) const {
  nfs::NfsServer* server = runtime_->servers->find(host);
  if (server == nullptr || !runtime_->network->is_up(host)) return nullptr;
  return &server->store();
}

std::string ReplicaManager::anchor_of(const std::string& stored_path) const {
  std::string best;
  bool found = false;
  for (const auto& [anchor, name] : primaries_) {
    (void)name;
    if (path_is_within(stored_path, anchor) && (!found || anchor.size() > best.size())) {
      best = anchor;
      found = true;
    }
  }
  return found ? best : std::string{};
}

std::vector<net::HostId> ReplicaManager::live_target_hosts() const {
  std::vector<net::HostId> out;
  for (const pastry::NodeId t : targets_) {
    if (!runtime_->overlay->is_live(t)) continue;
    const net::HostId host = runtime_->overlay->host_of(t);
    if (runtime_->network->is_up(host)) out.push_back(host);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Primary registry
// ---------------------------------------------------------------------------

void ReplicaManager::register_primary(const std::string& stored_anchor_path,
                                      const std::string& effective_name) {
  primaries_[stored_anchor_path] = effective_name;
  ClockPauser pause(*runtime_->clock);
  for (const pastry::NodeId t : targets_) {
    if (runtime_->overlay->is_live(t)) (void)push_anchor_to(t, stored_anchor_path);
  }
}

void ReplicaManager::unregister_primary(const std::string& stored_anchor_path) {
  primaries_.erase(stored_anchor_path);
}

// ---------------------------------------------------------------------------
// Mutation mirroring
// ---------------------------------------------------------------------------
// Every mirror op applies the primary-side mutation at the same stored path
// inside the hidden area of each live replica target. What the fan-out
// costs the foreground op is KoshaConfig::mirror_mode's call: kBackground
// pauses the clock (messages counted, no foreground delay — the paper's
// "asynchronous" model), kSequential lets each wire charge in turn (the
// op pays the sum), kOverlapped rewinds to the batch start before each
// wire and ends at the slowest one (the op pays the max). Both the sum
// and the max are accumulated in MirrorStats regardless of mode.

std::size_t ReplicaManager::fan_out(std::size_t payload,
                                    const std::function<void(net::HostId)>& apply) {
  const std::vector<net::HostId> targets = live_target_hosts();
  if (targets.empty()) return 0;
  SimClock& clock = *runtime_->clock;
  const KoshaConfig::MirrorMode mode = runtime_->config.mirror_mode;
  // An already-paused clock (membership-driven repair/push) keeps the
  // fan-out free no matter the mode: set_now/advance are no-ops there.
  std::optional<ClockPauser> pause;
  if (mode == KoshaConfig::MirrorMode::kBackground) pause.emplace(clock);
  const SimDuration start = clock.now();
  SimDuration sum{};
  SimDuration slowest{};
  for (const net::HostId host : targets) {
    if (mode == KoshaConfig::MirrorMode::kOverlapped) clock.set_now(start);
    const SimDuration before = clock.now();
    // One span per replica target: a mutating client op traces as the
    // primary forward plus this fan-out of mirror spans.
    SpanScope span(runtime_->tracer, "replica.mirror", host_);
    if (span.active()) span.tag("target", std::to_string(host));
    if (mirror_ops_ != nullptr) mirror_ops_->inc();
    runtime_->network->charge_message(host_, host, payload);
    apply(host);
    const SimDuration took = clock.now() - before;
    sum = sum + took;
    if (took > slowest) slowest = took;
  }
  if (mode == KoshaConfig::MirrorMode::kOverlapped) clock.set_now(start + slowest);
  mirror_stats_.rpcs += targets.size();
  mirror_stats_.batches += 1;
  mirror_stats_.sequential = mirror_stats_.sequential + sum;
  mirror_stats_.overlapped = mirror_stats_.overlapped + slowest;
  return targets.size();
}

void ReplicaManager::note_mirror_error() {
  ++mirror_stats_.errors;
  if (mirror_errors_ != nullptr) mirror_errors_->inc();
}

std::size_t ReplicaManager::for_each_replica(
    const std::string& stored_path, std::size_t payload,
    const std::function<void(fs::StorageBackend&, const std::string&)>& op) {
  if (anchor_of(stored_path).empty()) return 0;
  return fan_out(payload, [&](net::HostId host) {
    if (fs::StorageBackend* store = store_of(host)) {
      op(*store, hidden_root(id_) + stored_path);
    }
  });
}

// Each mirror lambda checks its application and routes failures (and holes:
// a path the replica should have but cannot resolve) to note_mirror_error(),
// so stale replicas are counted instead of silently accumulating until the
// audit pass happens to notice.

std::size_t ReplicaManager::mirror_mkdir_p(const std::string& stored_path) {
  return for_each_replica(stored_path, 96,
                          [this](fs::StorageBackend& store, const std::string& path) {
                            if (!store.mkdir_p(path).ok()) note_mirror_error();
                          });
}

std::size_t ReplicaManager::mirror_create(const std::string& stored_path, std::uint32_t mode,
                                          std::uint32_t uid, std::uint32_t gid) {
  return for_each_replica(
      stored_path, 96,
      [this, mode, uid, gid](fs::StorageBackend& store, const std::string& path) {
        const auto [parent, name] = dir_and_name(path);
        const auto dir = store.mkdir_p(parent);
        if (!dir.ok() || !store.create(*dir, name, mode, uid, gid).ok()) {
          note_mirror_error();
        }
      });
}

std::size_t ReplicaManager::mirror_write(const std::string& stored_path, std::uint64_t offset,
                                         std::string_view data) {
  return for_each_replica(stored_path, data.size(),
                          [this, offset, data](fs::StorageBackend& store,
                                               const std::string& path) {
                            const auto inode = store.resolve(path);
                            if (!inode.ok() || !store.write(*inode, offset, data).ok()) {
                              note_mirror_error();
                            }
                          });
}

std::size_t ReplicaManager::mirror_truncate(const std::string& stored_path,
                                            std::uint64_t size) {
  return for_each_replica(stored_path, 96,
                          [this, size](fs::StorageBackend& store, const std::string& path) {
                            const auto inode = store.resolve(path);
                            if (!inode.ok() || !store.truncate(*inode, size).ok()) {
                              note_mirror_error();
                            }
                          });
}

std::size_t ReplicaManager::mirror_set_mode(const std::string& stored_path,
                                            std::uint32_t mode) {
  return for_each_replica(stored_path, 96,
                          [this, mode](fs::StorageBackend& store, const std::string& path) {
                            const auto inode = store.resolve(path);
                            if (!inode.ok() || !store.set_mode(*inode, mode).ok()) {
                              note_mirror_error();
                            }
                          });
}

std::size_t ReplicaManager::mirror_symlink(const std::string& stored_path,
                                           const std::string& target) {
  return for_each_replica(
      stored_path, 96, [this, &target](fs::StorageBackend& store, const std::string& path) {
        const auto [parent, name] = dir_and_name(path);
        const auto dir = store.mkdir_p(parent);
        if (!dir.ok() || !store.symlink(*dir, name, target).ok()) note_mirror_error();
      });
}

// For the removal mirrors, absence is the goal state: an unresolvable
// parent or a kNoEnt from the store means the replica already lacks the
// entry, which is exactly what the mutation wanted. Only other failures
// (kNotEmpty, kStale, ...) leave the replica stale.

std::size_t ReplicaManager::mirror_remove(const std::string& stored_path) {
  return for_each_replica(stored_path, 96,
                          [this](fs::StorageBackend& store, const std::string& path) {
                            const auto [parent, name] = dir_and_name(path);
                            const auto dir = store.resolve(parent);
                            if (!dir.ok()) return;
                            const auto removed = store.remove(*dir, name);
                            if (!removed.ok() && removed.error() != fs::FsStatus::kNoEnt) {
                              note_mirror_error();
                            }
                          });
}

std::size_t ReplicaManager::mirror_rmdir(const std::string& stored_path) {
  return for_each_replica(stored_path, 96,
                          [this](fs::StorageBackend& store, const std::string& path) {
                            const auto [parent, name] = dir_and_name(path);
                            const auto dir = store.resolve(parent);
                            if (!dir.ok()) return;
                            const auto removed = store.rmdir(*dir, name);
                            if (!removed.ok() && removed.error() != fs::FsStatus::kNoEnt) {
                              note_mirror_error();
                            }
                          });
}

std::size_t ReplicaManager::mirror_remove_recursive(const std::string& stored_path) {
  return for_each_replica(stored_path, 96,
                          [this](fs::StorageBackend& store, const std::string& path) {
                            const auto [parent, name] = dir_and_name(path);
                            const auto dir = store.resolve(parent);
                            if (!dir.ok()) return;
                            const auto removed = store.remove_recursive(*dir, name);
                            if (!removed.ok() && removed.error() != fs::FsStatus::kNoEnt) {
                              note_mirror_error();
                            }
                          });
}

std::size_t ReplicaManager::mirror_rename(const std::string& from_path,
                                          const std::string& to_path) {
  if (anchor_of(from_path).empty()) return 0;
  return fan_out(96, [&](net::HostId host) {
    fs::StorageBackend* store = store_of(host);
    if (store == nullptr) return;
    const auto [from_parent, from_name] = dir_and_name(hidden_root(id_) + from_path);
    const auto [to_parent, to_name] = dir_and_name(hidden_root(id_) + to_path);
    const auto fd = store->resolve(from_parent);
    const auto td = store->mkdir_p(to_parent);
    if (!fd.ok() || !td.ok() || !store->rename(*fd, from_name, *td, to_name).ok()) {
      note_mirror_error();
    }
  });
}

// ---------------------------------------------------------------------------
// Replica establishment / teardown
// ---------------------------------------------------------------------------

bool ReplicaManager::push_anchor_to(pastry::NodeId target, const std::string& anchor_path) {
  if (!runtime_->overlay->is_live(target)) return true;
  const net::HostId host = runtime_->overlay->host_of(target);
  fs::StorageBackend* store = store_of(host);
  if (store == nullptr) return true;
  SpanScope span(runtime_->tracer, "replica.push_anchor", host_);
  if (span.active()) span.tag("target", std::to_string(host));
  if (pushes_ != nullptr) pushes_->inc();
  const std::string root = hidden_root(id_);

  // MIGRATION_NOT_COMPLETE guards the copy (paper §4.4).
  if (const auto dir = store->mkdir_p(root); dir.ok()) {
    // kosha-lint: allow(ignore-status): kExist means the flag is already up; NOSPC surfaces on the copy itself
    (void)store->create(*dir, kMigrationFlag);
  }
  runtime_->network->charge_message(host_, host, 96);
  const bool complete = copy_subtree(*runtime_, host_, local_store(), anchor_path, host,
                                     *store, root + anchor_path);
  if (complete) {
    if (const auto dir = store->resolve(root); dir.ok()) {
      // kosha-lint: allow(ignore-status): a surviving flag only keeps the copy marked incomplete; the audit re-pushes it
      (void)store->remove(*dir, kMigrationFlag);
    }
    if (ReplicaManager* rm = runtime_->replica_manager(host)) {
      rm->accept_replica(id_, anchor_path, primaries_.at(anchor_path));
    }
  } else {
    span.status("interrupted");
    KOSHA_LOG_WARN("migration to node %s interrupted; flag left in place",
                   target.to_hex().c_str());
  }
  return complete;
}

void ReplicaManager::stall_through_brownout(net::HostId peer) {
  net::FaultPlan* plan = runtime_->network->fault_plan();
  if (plan == nullptr || runtime_->clock->paused()) return;
  for (;;) {
    const SimDuration now = runtime_->clock->now();
    SimDuration end = plan->brownout_end(peer, now);
    if (const SimDuration self = plan->brownout_end(host_, now); self > end) end = self;
    if (end <= now) return;
    runtime_->clock->advance(end - now + SimDuration::nanos(1));
  }
}

void ReplicaManager::push_all_to(pastry::NodeId target) {
  if (runtime_->overlay->is_live(target)) {
    stall_through_brownout(runtime_->overlay->host_of(target));
  }
  ClockPauser pause(*runtime_->clock);
  for (const auto& [anchor, name] : primaries_) {
    (void)name;
    if (!push_anchor_to(target, anchor)) return;  // interrupted: flag stays
  }
}

void ReplicaManager::delete_from(pastry::NodeId target) {
  if (!runtime_->overlay->is_live(target)) return;
  const net::HostId host = runtime_->overlay->host_of(target);
  fs::StorageBackend* store = store_of(host);
  if (store == nullptr) return;
  ClockPauser pause(*runtime_->clock);
  runtime_->network->charge_message(host_, host, 96);
  if (const auto area = store->resolve(std::string("/") + kReplicaArea); area.ok()) {
    // kosha-lint: allow(ignore-status): best-effort space reclamation; a leftover stale copy is reclaimed by the next audit
    (void)store->remove_recursive(*area, id_.to_hex());
  }
  if (ReplicaManager* rm = runtime_->replica_manager(host)) rm->drop_replicas_of(id_);
}

void ReplicaManager::accept_replica(pastry::NodeId primary,
                                    const std::string& stored_anchor_path,
                                    const std::string& effective_name) {
  replicas_held_[primary][stored_anchor_path] = effective_name;
  // A fresh copy from a live primary supersedes copies of the same anchor
  // held for primaries that have since died — reclaim their space.
  for (auto it = replicas_held_.begin(); it != replicas_held_.end();) {
    if (it->first != primary && !runtime_->overlay->is_live(it->first) &&
        it->second.count(stored_anchor_path) != 0) {
      it->second.erase(stored_anchor_path);
      fs::StorageBackend& store = local_store();
      const auto [parent, name] = dir_and_name(hidden_root(it->first) + stored_anchor_path);
      if (const auto dir = store.resolve(parent); dir.ok()) {
        // kosha-lint: allow(ignore-status): best-effort space reclamation; a leftover stale copy is reclaimed by the next audit
        (void)store.remove_recursive(*dir, name);
      }
      if (it->second.empty()) {
        it = replicas_held_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

void ReplicaManager::drop_replicas_of(pastry::NodeId primary) {
  replicas_held_.erase(primary);
}

// ---------------------------------------------------------------------------
// Membership changes
// ---------------------------------------------------------------------------

void ReplicaManager::on_neighbors_changed() {
  const bool content_changed = reconcile_dead_primaries(nullptr);
  refresh_targets(content_changed, nullptr);
  migrate_moved_anchors();
}

ReplicaManager::ReconcileReport ReplicaManager::reconcile(std::size_t max_pushes) {
  ReconcileReport report;
  const bool content_changed = reconcile_dead_primaries(&report);
  refresh_targets(content_changed, &report);
  migrate_moved_anchors();
  audit_replicas(max_pushes, &report);
  return report;
}

bool ReplicaManager::reconcile_dead_primaries(ReconcileReport* report) {
  bool content_changed = false;

  // Primaries we held replicas for may have died: promote the anchors
  // whose key space we now own. Anchors owned by another node are handed
  // to it directly if it has neither promoted nor received them —
  // callback ordering must not decide whether data survives.
  const auto held_snapshot = replicas_held_;
  for (const auto& [primary, anchors] : held_snapshot) {
    if (runtime_->overlay->is_live(primary)) continue;
    std::map<std::string, std::string> mine;
    for (const auto& [anchor, name] : anchors) {
      const auto route = runtime_->overlay->route(host_, key_for_name(name));
      if (route.owner == id_) {
        if (primaries_.count(anchor) != 0) {
          // We are already primary (the anchor migrated to us while its old
          // owner was still alive): the hidden copy is stale — discard it
          // rather than promote it over live content.
          discard_replica(primary, anchor);
          if (report != nullptr) ++report->dropped;
        } else {
          mine.emplace(anchor, name);
        }
      } else {
        const bool copied = hand_off_replica(primary, route.owner, anchor, name);
        if (copied && report != nullptr) ++report->handed_off;
      }
    }
    if (!mine.empty()) {
      promote(primary, mine);
      if (report != nullptr) report->promoted += mine.size();
      content_changed = true;
    }
  }
  return content_changed;
}

void ReplicaManager::refresh_targets(bool content_changed, ReconcileReport* report) {
  const std::vector<pastry::NodeId> fresh =
      runtime_->overlay->replica_targets(id_, runtime_->config.replicas);
  for (const pastry::NodeId old : targets_) {
    if (std::find(fresh.begin(), fresh.end(), old) == fresh.end()) delete_from(old);
  }
  for (const pastry::NodeId t : fresh) {
    const bool is_new = std::find(targets_.begin(), targets_.end(), t) == targets_.end();
    if (is_new || content_changed) {
      push_all_to(t);
      if (report != nullptr) report->pushed += primaries_.size();
    }
  }
  targets_ = fresh;
}

void ReplicaManager::migrate_moved_anchors() {
  // A join may have taken over part of our key space: hand over anchors
  // we no longer own (paper §4.3.1).
  const auto primaries_snapshot = primaries_;
  for (const auto& [anchor, name] : primaries_snapshot) {
    const auto route = runtime_->overlay->route(host_, key_for_name(name));
    if (route.owner != id_) migrate_anchor_to(route.owner, anchor, name);
  }
}

void ReplicaManager::audit_replicas(std::size_t max_pushes, ReconcileReport* report) {
  // Anti-entropy traffic is off the critical path: count it, charge no
  // foreground time.
  ClockPauser pause(*runtime_->clock);
  const std::string root = hidden_root(id_);
  std::size_t pushes = 0;

  // Placement audit: every registered anchor must exist, flag-free, inside
  // this primary's hidden area on each live target. Holes (a target that
  // crashed before the copy finished, joined after the last membership
  // push, or lost the copy to a purge) are re-pushed, at most `max_pushes`
  // per pass.
  for (const pastry::NodeId t : targets_) {
    if (!runtime_->overlay->is_live(t)) continue;
    const net::HostId target_host = runtime_->overlay->host_of(t);
    fs::StorageBackend* store = store_of(target_host);
    if (store == nullptr) continue;
    // One audit round trip per target: request a manifest of our area.
    runtime_->network->charge_rtt(host_, target_host, 64);
    const bool flagged = store->resolve(path_child(root, kMigrationFlag)).ok();
    for (const auto& [anchor, name] : primaries_) {
      (void)name;
      // A present, flag-free copy still counts as a hole when any of its
      // blocks fails hash verification (CAS stores; flat stores always
      // verify clean) — the re-push rewrites the damaged content.
      if (!flagged && store->resolve(root + anchor).ok() &&
          store->verify_subtree(root + anchor) == 0) {
        continue;
      }
      if (report != nullptr) ++report->missing;
      if (pushes >= max_pushes) continue;  // rate limit: rest next pass
      if (push_anchor_to(t, anchor)) {
        ++pushes;
        if (report != nullptr) ++report->pushed;
      }
    }
  }

  // Stale-copy reclamation: a hidden copy held for a *live* primary that
  // no longer lists this node as a target is left over from a delete_from
  // that could not reach us (we were down or browned out). Ask the primary
  // and reclaim the space.
  const auto held_snapshot = replicas_held_;
  for (const auto& [primary, anchors] : held_snapshot) {
    if (!runtime_->overlay->is_live(primary)) continue;
    const net::HostId primary_host = runtime_->overlay->host_of(primary);
    if (!runtime_->network->is_up(primary_host)) continue;
    ReplicaManager* prm = runtime_->replica_manager(primary_host);
    if (prm == nullptr) continue;
    runtime_->network->charge_rtt(host_, primary_host, 64);
    const bool still_target =
        std::find(prm->targets_.begin(), prm->targets_.end(), id_) != prm->targets_.end();
    for (const auto& [anchor, name] : anchors) {
      (void)name;
      // Keep the copy only while the primary both targets us and still
      // owns the anchor: a migration that moved the anchor to a new owner
      // leaves the old primary's targets holding copies nobody tracks.
      if (still_target && prm->primaries_.count(anchor) != 0) continue;
      discard_replica(primary, anchor);
      if (report != nullptr) ++report->dropped;
    }
  }
}

void ReplicaManager::discard_replica(pastry::NodeId primary, const std::string& anchor) {
  const auto it = replicas_held_.find(primary);
  if (it == replicas_held_.end()) return;
  it->second.erase(anchor);
  fs::StorageBackend& store = local_store();
  const auto [parent, name] = dir_and_name(hidden_root(primary) + anchor);
  if (const auto dir = store.resolve(parent); dir.ok()) {
    // kosha-lint: allow(ignore-status): best-effort space reclamation; a leftover stale copy is reclaimed by the next audit
    (void)store.remove_recursive(*dir, name);
  }
  if (it->second.empty()) replicas_held_.erase(it);
}

bool ReplicaManager::hand_off_replica(pastry::NodeId dead_primary, pastry::NodeId owner,
                                      const std::string& anchor, const std::string& name) {
  if (!runtime_->overlay->is_live(owner)) return false;
  const net::HostId owner_host = runtime_->overlay->host_of(owner);
  ReplicaManager* owner_rm = runtime_->replica_manager(owner_host);
  fs::StorageBackend* owner_store = store_of(owner_host);
  if (owner_rm == nullptr || owner_store == nullptr) return false;
  // Skip if the owner already promoted its own copy or received a handoff.
  if (owner_rm->primaries_.count(anchor) != 0) return false;
  // Skip if our copy is known-incomplete; a holder with a complete copy
  // will perform the handoff instead.
  fs::StorageBackend& store = local_store();
  const std::string root = hidden_root(dead_primary);
  if (store.resolve(path_child(root, kMigrationFlag)).ok()) return false;
  if (!store.resolve(root + anchor).ok()) return false;

  SpanScope span(runtime_->tracer, "replica.handoff", host_);
  if (span.active()) span.tag("target", std::to_string(owner_host));
  if (handoffs_ != nullptr) handoffs_->inc();
  ClockPauser pause(*runtime_->clock);
  if (!copy_subtree(*runtime_, host_, store, root + anchor, owner_host, *owner_store,
                    anchor)) {
    return false;
  }
  owner_rm->register_primary(anchor, name);
  // Our copy of the dead primary's anchor is spent; the new primary pushes
  // fresh replicas to its own targets.
  if (const auto it = replicas_held_.find(dead_primary); it != replicas_held_.end()) {
    it->second.erase(anchor);
    const auto [parent, leaf] = dir_and_name(root + anchor);
    if (const auto dir = store.resolve(parent); dir.ok()) {
      // kosha-lint: allow(ignore-status): best-effort space reclamation; a leftover stale copy is reclaimed by the next audit
      (void)store.remove_recursive(*dir, leaf);
    }
    if (it->second.empty()) replicas_held_.erase(it);
  }
  return true;
}

void ReplicaManager::evacuate() {
  // For each anchor, the post-departure owner is the closest *other* node
  // to the key; hand the content over exactly as a join migration would.
  const auto snapshot = primaries_;
  for (const auto& [anchor, name] : snapshot) {
    const pastry::Key key = key_for_name(name);
    pastry::NodeId successor{};
    bool found = false;
    for (const auto& [candidate, host] : runtime_->overlay->ring().sorted()) {
      (void)host;
      if (candidate == id_ || !runtime_->overlay->is_live(candidate)) continue;
      if (!found || ring_distance(candidate, key) < ring_distance(successor, key) ||
          (ring_distance(candidate, key) == ring_distance(successor, key) &&
           candidate < successor)) {
        successor = candidate;
        found = true;
      }
    }
    if (found) migrate_anchor_to(successor, anchor, name);
  }
}

void ReplicaManager::promote(pastry::NodeId dead_primary,
                             const std::map<std::string, std::string>& anchors) {
  SpanScope span(runtime_->tracer, "replica.promote", host_);
  if (promotions_ != nullptr) promotions_->inc();
  fs::StorageBackend& store = local_store();
  const std::string root = hidden_root(dead_primary);

  // If our copy was mid-migration when the primary died, repair it from a
  // replica that holds a complete copy (paper §4.4).
  const bool incomplete = store.resolve(path_child(root, kMigrationFlag)).ok();
  if (incomplete) {
    for (const auto& [host, rm] : runtime_->replica_managers) {
      if (host == host_ || rm->replicas_held_.count(dead_primary) == 0) continue;
      fs::StorageBackend* peer = store_of(host);
      if (peer == nullptr) continue;
      if (peer->resolve(path_child(root, kMigrationFlag)).ok()) continue;  // also incomplete
      if (repairs_ != nullptr) repairs_->inc();
      // The donor may itself be browned out mid-repair; wait the window
      // out rather than repairing from an unreachable peer.
      stall_through_brownout(host);
      ClockPauser pause(*runtime_->clock);
      for (const auto& [anchor, name] : anchors) {
        (void)name;
        (void)copy_subtree(*runtime_, host, *peer, root + anchor, host_, store,
                           root + anchor);
      }
      if (const auto dir = store.resolve(root); dir.ok()) {
        // kosha-lint: allow(ignore-status): a surviving flag only keeps the copy marked incomplete; the audit re-pushes it
        (void)store.remove(*dir, kMigrationFlag);
      }
      break;
    }
  }

  for (const auto& [anchor, name] : anchors) {
    const std::string hidden_path = root + anchor;
    if (!store.resolve(hidden_path).ok()) continue;  // no data: lost with the primary
    // Move the hidden copy into the live namespace.
    const auto [live_parent, live_name] = dir_and_name(anchor);
    const auto parent_dir = store.mkdir_p(live_parent);
    if (!parent_dir.ok()) continue;
    if (store.lookup(*parent_dir, live_name).ok()) {
      // kosha-lint: allow(ignore-status): best-effort space reclamation; a leftover stale copy is reclaimed by the next audit
      (void)store.remove_recursive(*parent_dir, live_name);
    }
    const auto [hidden_parent, hidden_name] = dir_and_name(hidden_path);
    const auto hdir = store.resolve(hidden_parent);
    if (!hdir.ok() || !store.rename(*hdir, hidden_name, *parent_dir, live_name).ok()) {
      continue;
    }
    primaries_[anchor] = name;
    replicas_held_[dead_primary].erase(anchor);
  }

  if (const auto it = replicas_held_.find(dead_primary);
      it != replicas_held_.end() && it->second.empty()) {
    replicas_held_.erase(it);
    const auto [parent, name] = dir_and_name(root);
    if (const auto dir = store.resolve(parent); dir.ok()) {
      // kosha-lint: allow(ignore-status): best-effort space reclamation; a leftover stale copy is reclaimed by the next audit
      (void)store.remove_recursive(*dir, name);
    }
  }
}

void ReplicaManager::migrate_anchor_to(pastry::NodeId new_owner,
                                       const std::string& stored_anchor_path,
                                       const std::string& effective_name) {
  if (!runtime_->overlay->is_live(new_owner)) return;
  const net::HostId owner_host = runtime_->overlay->host_of(new_owner);
  fs::StorageBackend* owner_store = store_of(owner_host);
  ReplicaManager* owner_rm = runtime_->replica_manager(owner_host);
  if (owner_store == nullptr || owner_rm == nullptr) return;

  SpanScope span(runtime_->tracer, "replica.migrate", host_);
  if (span.active()) span.tag("target", std::to_string(owner_host));
  if (migrations_ != nullptr) migrations_->inc();
  ClockPauser pause(*runtime_->clock);
  fs::StorageBackend& store = local_store();
  if (!copy_subtree(*runtime_, host_, store, stored_anchor_path, owner_host, *owner_store,
                    stored_anchor_path)) {
    return;  // interrupted; retried on the next membership event
  }
  // The new owner takes over as primary; our live copy becomes a replica
  // (paper §4.3.1: "their copy on N becomes one of the replicas").
  primaries_.erase(stored_anchor_path);
  owner_rm->register_primary(stored_anchor_path, effective_name);

  const auto [src_parent, src_name] = dir_and_name(stored_anchor_path);
  const bool keep_as_replica =
      std::find(owner_rm->targets_.begin(), owner_rm->targets_.end(), id_) !=
      owner_rm->targets_.end();
  if (keep_as_replica) {
    // "Their copy on N becomes one of the replicas" (paper §4.3.1).
    const std::string dst = hidden_root(new_owner) + stored_anchor_path;
    const auto [dst_parent, dst_name] = dir_and_name(dst);
    const auto sdir = store.resolve(src_parent);
    const auto ddir = store.mkdir_p(dst_parent);
    if (sdir.ok() && ddir.ok()) {
      if (store.lookup(*ddir, dst_name).ok()) {
        // kosha-lint: allow(ignore-status): best-effort space reclamation; a leftover stale copy is reclaimed by the next audit
        (void)store.remove_recursive(*ddir, dst_name);
      }
      if (store.rename(*sdir, src_name, *ddir, dst_name).ok()) {
        replicas_held_[new_owner][stored_anchor_path] = effective_name;
      }
    }
  } else {
    // Not a replica target of the new owner: reclaim the space.
    if (const auto sdir = store.resolve(src_parent); sdir.ok()) {
      // kosha-lint: allow(ignore-status): best-effort space reclamation; a leftover stale copy is reclaimed by the next audit
      (void)store.remove_recursive(*sdir, src_name);
    }
  }

  // Prune the private scaffolding chain the anchor left behind (it lives
  // entirely inside the anchor container, so nothing else can use it).
  std::string cursor = src_parent;
  while (split_path(cursor).size() >= 2) {  // never remove /.a itself
    const auto inode = store.resolve(cursor);
    if (!inode.ok()) break;
    const auto listing = store.readdir(*inode);
    if (!listing.ok() || !listing->empty()) break;
    const auto [parent, name] = dir_and_name(cursor);
    const auto pdir = store.resolve(parent);
    if (!pdir.ok() || !store.rmdir(*pdir, name).ok()) break;
    cursor = parent;
  }
}


}  // namespace kosha

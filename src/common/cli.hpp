#pragma once

// Tiny command-line flag parser for bench/example binaries.
//
// Supports "--name value" and "--name=value". Unknown flags are an error so
// typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <string>

namespace kosha {

class CliArgs {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Reject flags outside `known` (comma-separated list); returns an error
  /// message or empty string.
  [[nodiscard]] std::string check_known(const std::string& known) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Environment-variable lookup with a fallback — the one sanctioned seam
/// for out-of-band test/bench configuration (e.g. KOSHA_TEST_BACKEND).
/// Reading the environment is not a determinism leak: the value only ever
/// selects *which* deterministic configuration runs, never feeds entropy
/// into a run.
[[nodiscard]] std::string env_or(const char* name, std::string fallback);

}  // namespace kosha

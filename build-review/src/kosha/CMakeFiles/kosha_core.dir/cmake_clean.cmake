file(REMOVE_RECURSE
  "CMakeFiles/kosha_core.dir/audit.cpp.o"
  "CMakeFiles/kosha_core.dir/audit.cpp.o.d"
  "CMakeFiles/kosha_core.dir/cluster.cpp.o"
  "CMakeFiles/kosha_core.dir/cluster.cpp.o.d"
  "CMakeFiles/kosha_core.dir/koshad.cpp.o"
  "CMakeFiles/kosha_core.dir/koshad.cpp.o.d"
  "CMakeFiles/kosha_core.dir/koshad_failover.cpp.o"
  "CMakeFiles/kosha_core.dir/koshad_failover.cpp.o.d"
  "CMakeFiles/kosha_core.dir/koshad_resolve.cpp.o"
  "CMakeFiles/kosha_core.dir/koshad_resolve.cpp.o.d"
  "CMakeFiles/kosha_core.dir/mount.cpp.o"
  "CMakeFiles/kosha_core.dir/mount.cpp.o.d"
  "CMakeFiles/kosha_core.dir/placement.cpp.o"
  "CMakeFiles/kosha_core.dir/placement.cpp.o.d"
  "CMakeFiles/kosha_core.dir/posix.cpp.o"
  "CMakeFiles/kosha_core.dir/posix.cpp.o.d"
  "CMakeFiles/kosha_core.dir/replication.cpp.o"
  "CMakeFiles/kosha_core.dir/replication.cpp.o.d"
  "CMakeFiles/kosha_core.dir/virtual_handles.cpp.o"
  "CMakeFiles/kosha_core.dir/virtual_handles.cpp.o.d"
  "libkosha_core.a"
  "libkosha_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5_load_distribution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libkosha_trace.a"
)

#pragma once

// Anti-entropy replica repair daemon (paper §4.3: transparent recovery).
//
// One per node, running on the virtual clock via the event loop. Each
// pass delegates to ReplicaManager::reconcile(): promote/hand off anchors
// of dead primaries, refresh targets, migrate moved anchors, audit every
// (anchor, target) placement against the current ring, re-push missing
// or incomplete copies (rate-limited to max_pushes_per_tick per pass),
// and reclaim stale hidden copies.
//
// The daemon is what turns the failure detector's local ring repair into
// restored replication: a leaf-set change re-targets replicas once, but
// only the periodic audit converges the system back to K live copies when
// pushes raced a crash, a brownout ate a delete, or a falsely-suspected
// node returned with stale state.
//
// Invariants (DESIGN §8):
//   * repair traffic is background: counted by NetStats, never charged to
//     a foreground op (every pass runs under ClockPauser);
//   * repair is idempotent: a pass over a converged node performs audits
//     only, no mutations;
//   * repair is rate-limited: at most max_pushes_per_tick anchor pushes
//     per pass, so a mass failure cannot melt the network;
//   * scheduled callbacks never capture the daemon: they re-resolve it
//     through the runtime registry, so a crashed node's pending tick is
//     an inert no-op (same discipline as pastry::FailureDetector).

#include <cstdint>

#include "common/event_loop.hpp"
#include "common/sim_clock.hpp"
#include "kosha/runtime.hpp"

namespace kosha {

struct RepairDaemonConfig {
  /// Base interval between anti-entropy passes, plus loop jitter in
  /// [0, jitter] so the cluster's daemons do not phase-lock.
  SimDuration period = SimDuration::millis(400);
  SimDuration jitter = SimDuration::millis(60);
  /// Repair-RPC rate limit: anchor re-pushes allowed per pass.
  std::size_t max_pushes_per_tick = 4;
};

struct RepairDaemonStats {
  std::uint64_t ticks = 0;
  std::uint64_t promoted = 0;
  std::uint64_t handed_off = 0;
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  /// Holes seen by the most recent audit (0 once converged).
  std::uint64_t last_missing = 0;
  /// Passes that performed no pushes because the host was busy serving
  /// foreground RPCs (overload control: anti-entropy yields first).
  std::uint64_t yields = 0;

  friend bool operator==(const RepairDaemonStats&, const RepairDaemonStats&) = default;
};

class RepairDaemon {
 public:
  RepairDaemon(RepairDaemonConfig config, Runtime* runtime, net::HostId host);

  RepairDaemon(const RepairDaemon&) = delete;
  RepairDaemon& operator=(const RepairDaemon&) = delete;

  /// Register with the runtime and schedule the first pass.
  void start();
  /// Stop and deregister; pending ticks become no-ops.
  void stop();

  /// One anti-entropy pass now (also the scheduled-tick body).
  void tick();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] net::HostId host() const { return host_; }
  [[nodiscard]] const RepairDaemonStats& stats() const { return stats_; }
  [[nodiscard]] const RepairDaemonConfig& config() const { return config_; }

 private:
  void schedule_tick();

  RepairDaemonConfig config_;
  Runtime* runtime_;
  net::HostId host_;
  bool running_ = false;
  RepairDaemonStats stats_;
};

}  // namespace kosha

# Empty compiler generated dependencies file for test_mount.
# This may be replaced when dependencies are built.

#include "pastry/overlay.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <set>
#include <stdexcept>

#include "pastry/failure_detector.hpp"

namespace kosha::pastry {

namespace {

/// Total order "a is closer to target than b" with deterministic tie-break.
bool closer(Key target, NodeId a, NodeId b) {
  const Uint128 da = ring_distance(a, target);
  const Uint128 db = ring_distance(b, target);
  if (da != db) return da < db;
  return a < b;
}

/// Rough wire size of a node-state transfer, for byte accounting only.
constexpr std::size_t kStateBytes = 2048;

}  // namespace

PastryOverlay::PastryOverlay(PastryConfig config, net::SimNetwork* network)
    : config_(config), network_(network) {
  assert(network_ != nullptr);
}

PastryOverlay::Node& PastryOverlay::node(NodeId id) {
  const auto it = index_by_id_.find(id);
  if (it == index_by_id_.end()) throw std::invalid_argument("unknown node id");
  return *nodes_[it->second];
}

const PastryOverlay::Node& PastryOverlay::node(NodeId id) const {
  const auto it = index_by_id_.find(id);
  if (it == index_by_id_.end()) throw std::invalid_argument("unknown node id");
  return *nodes_[it->second];
}

bool PastryOverlay::is_live(NodeId id) const {
  const auto it = index_by_id_.find(id);
  return it != index_by_id_.end() && nodes_[it->second]->alive;
}

net::HostId PastryOverlay::host_of(NodeId id) const { return node(id).host; }

NodeId PastryOverlay::node_on_host(net::HostId host) const {
  const auto it = index_by_host_.find(host);
  if (it == index_by_host_.end() || !nodes_[it->second]->alive) {
    throw std::invalid_argument("no live overlay node on host");
  }
  return nodes_[it->second]->id;
}

bool PastryOverlay::host_has_node(net::HostId host) const {
  const auto it = index_by_host_.find(host);
  return it != index_by_host_.end() && nodes_[it->second]->alive;
}

const LeafSet& PastryOverlay::leaf_set(NodeId id) const { return node(id).leaves; }

const RoutingTable& PastryOverlay::routing_table(NodeId id) const { return node(id).table; }

void PastryOverlay::set_neighbor_callback(NodeId id, NeighborCallback callback) {
  node(id).on_leaf_change = std::move(callback);
}

void PastryOverlay::set_detector(NodeId id, FailureDetector* detector) {
  node(id).detector = detector;
}

FailureDetector* PastryOverlay::detector(NodeId id) const {
  const auto it = index_by_id_.find(id);
  if (it == index_by_id_.end() || !nodes_[it->second]->alive) return nullptr;
  return nodes_[it->second]->detector;
}

void PastryOverlay::notify_leaf_change(Node& n) {
  if (n.alive && n.on_leaf_change) n.on_leaf_change();
}

// One conceptual routing step of the Pastry algorithm (R&D'01 fig. 3):
// finish via the leaf set when it covers the key, otherwise fix the next
// digit via the routing table, otherwise (rare case) forward to any known
// strictly-closer node. Dead routing-table entries encountered are reported
// through `dead_rt` for the caller to prune.
std::optional<NodeId> PastryOverlay::compute_next_hop(const Node& cur, Key key,
                                                      std::vector<NodeId>* dead_rt) const {
  if (cur.leaves.covers(key)) {
    NodeId best = cur.id;
    for (const NodeId m : cur.leaves.members()) {
      if (is_live(m) && closer(key, m, best)) best = m;
    }
    if (best == cur.id) return std::nullopt;
    return best;
  }

  if (const auto nh = cur.table.next_hop(key); nh.has_value()) {
    if (is_live(*nh)) return *nh;
    if (dead_rt != nullptr) dead_rt->push_back(*nh);
  }

  // Rare case: no routing-table entry. Use any known node strictly closer
  // to the key than the current node.
  std::optional<NodeId> best;
  auto consider = [&](NodeId cand) {
    if (!is_live(cand) || !closer(key, cand, cur.id)) return;
    if (!best || closer(key, cand, *best)) best = cand;
  };
  for (const NodeId m : cur.leaves.members()) consider(m);
  for (const NodeId m : cur.table.entries()) consider(m);
  return best;  // nullopt => deliver locally
}

RouteResult PastryOverlay::route(net::HostId from_host, Key key) {
  Node* cur = &node(node_on_host(from_host));
  unsigned hops = 0;
  for (;;) {
    std::vector<NodeId> dead;
    const auto next = compute_next_hop(*cur, key, &dead);
    for (const NodeId d : dead) {
      cur->table.remove(d);
      network_->charge_timeout();
    }
    if (!next.has_value()) return {cur->id, hops};
    Node& nx = node(*next);
    network_->charge_overlay_hop(cur->host, nx.host);
    cur = &nx;
    if (++hops > 128) throw std::runtime_error("pastry routing did not converge");
  }
}

RouteResult PastryOverlay::trace_route(NodeId from, Key key) const {
  const Node* cur = &node(from);
  unsigned hops = 0;
  for (;;) {
    const auto next = compute_next_hop(*cur, key, nullptr);
    if (!next.has_value()) return {cur->id, hops};
    cur = &node(*next);
    if (++hops > 128) throw std::runtime_error("pastry routing did not converge");
  }
}

std::vector<NodeId> PastryOverlay::replica_targets(NodeId id, std::size_t k) const {
  std::vector<NodeId> out;
  if (k == 0) return out;
  for (const NodeId m : node(id).leaves.alternating_members(2 * k + 2)) {
    if (is_live(m)) out.push_back(m);
    if (out.size() == k) break;
  }
  return out;
}

void PastryOverlay::join(NodeId id, net::HostId host) {
  if (index_by_id_.count(id) != 0) throw std::invalid_argument("duplicate node id");
  if (host_has_node(host)) throw std::invalid_argument("host already runs a live node");

  nodes_.push_back(std::make_unique<Node>(id, host, config_));
  const std::size_t index = nodes_.size() - 1;
  index_by_id_[id] = index;
  index_by_host_[host] = index;
  Node& x = *nodes_[index];

  if (ring_.empty()) {
    ring_.insert(id, host);
    return;
  }

  // Route the join message from a bootstrap node to the node numerically
  // closest to the new id, remembering the path.
  Node* boot = &node(ring_.sorted().front().first);
  std::vector<Node*> path{boot};
  Node* cur = boot;
  network_->charge_message(x.host, boot->host);  // contact the bootstrap
  for (;;) {
    std::vector<NodeId> dead;
    const auto next = compute_next_hop(*cur, id, &dead);
    for (const NodeId d : dead) cur->table.remove(d);
    if (!next.has_value()) break;
    Node& nx = node(*next);
    network_->charge_overlay_hop(cur->host, nx.host);
    cur = &nx;
    path.push_back(cur);
  }

  // Build the new node's state from every node on the path (a superset of
  // the classic per-row copy; converges to the same tables).
  for (Node* p : path) {
    network_->charge_message(p->host, x.host, kStateBytes);
    auto offer = [&](NodeId cand) {
      if (!is_live(cand)) return;
      x.table.insert(cand);
      x.leaves.insert(cand);
    };
    offer(p->id);
    for (const NodeId cand : p->table.entries()) offer(cand);
    for (const NodeId cand : p->leaves.members()) offer(cand);
  }

  ring_.insert(id, host);

  // Announce the new node to everyone it learned about; they fold it into
  // their own state.
  std::set<NodeId> targets;
  for (const NodeId t : x.table.entries()) targets.insert(t);
  for (const NodeId t : x.leaves.members()) targets.insert(t);
  for (const NodeId t : targets) {
    if (!is_live(t)) continue;
    Node& peer = node(t);
    network_->charge_message(x.host, peer.host, kStateBytes / 4);
    peer.table.insert(id);
    if (peer.leaves.insert(id)) notify_leaf_change(peer);
  }
  notify_leaf_change(x);
}

void PastryOverlay::repair_leaf_set(Node& n) {
  // Pull leaf-set candidates from every remaining live member; the true
  // replacement neighbor is within l/2 positions of one of them. A
  // candidate the node's own failure detector has declared dead is not
  // accepted even when ground truth says it is live — the verdict may be
  // wrong (brownout), but the node cannot know that until the peer's
  // probes prove it (reintroduce()), and flip-flopping the leaf set in
  // between would churn replicas for nothing.
  auto declared = [&](NodeId cand) {
    return n.detector != nullptr && n.detector->has_declared_dead(cand);
  };
  auto acceptable = [&](NodeId cand) { return is_live(cand) && !declared(cand); };
  const std::vector<NodeId> snapshot = n.leaves.members();
  for (const NodeId m : snapshot) {
    // Eviction is verdict-driven, never ground-truth-driven: a member this
    // node has not declared dead stays in the leaf set even when it is in
    // fact down, so the failure detector keeps probing it. Evicting by
    // ground truth here would silently drop a second not-yet-detected
    // casualty while repairing around the first, and a node absent from
    // every leaf set is never probed — its death would go undeclared
    // forever. Without a detector (oracle mode) ground truth is the only
    // signal there is.
    if (declared(m) || (n.detector == nullptr && !is_live(m))) {
      n.leaves.remove(m);
      continue;
    }
    if (!is_live(m)) continue;  // a silent peer answers no state pull
    const Node& peer = node(m);
    network_->charge_rtt(n.host, peer.host, kStateBytes / 4);
    n.leaves.insert(peer.id);
    for (const NodeId cand : peer.leaves.members()) {
      if (acceptable(cand)) n.leaves.insert(cand);
    }
  }
}

void PastryOverlay::mark_dead(NodeId id) {
  Node& f = node(id);
  if (!f.alive) return;
  f.alive = false;
  f.on_leaf_change = nullptr;
  f.detector = nullptr;  // pending probe events resolve to null and no-op
  ring_.remove(id);
  if (const auto it = index_by_host_.find(f.host);
      it != index_by_host_.end() && nodes_[it->second]->id == id) {
    index_by_host_.erase(it);
  }
}

void PastryOverlay::fail(NodeId id) {
  if (!is_live(id)) return;
  mark_dead(id);

  for (const auto& up : nodes_) {
    Node& n = *up;
    if (!n.alive) continue;
    if (n.leaves.remove(id)) {
      network_->charge_timeout();  // the failure is detected by a peer
      repair_leaf_set(n);
      notify_leaf_change(n);
    }
    // Routing-table entries decay lazily during routing.
  }
}

void PastryOverlay::report_failure(NodeId observer, NodeId dead) {
  Node& n = node(observer);
  if (!n.alive) return;
  const bool was_member = n.leaves.remove(dead);
  n.table.remove(dead);
  if (!was_member) return;
  repair_leaf_set(n);
  notify_leaf_change(n);
  if (failure_listener_) failure_listener_(observer, dead);
}

void PastryOverlay::reintroduce(NodeId observer, NodeId peer) {
  Node& n = node(observer);
  if (!n.alive || !is_live(peer)) return;
  // Exchange state with the returning peer (it may have drifted while we
  // shunned it), then fold it back in.
  network_->charge_rtt(n.host, node(peer).host, kStateBytes / 4);
  n.table.insert(peer);
  if (n.leaves.insert(peer)) notify_leaf_change(n);
}

}  // namespace kosha::pastry

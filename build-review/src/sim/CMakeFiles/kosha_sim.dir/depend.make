# Empty dependencies file for kosha_sim.
# This may be replaced when dependencies are built.

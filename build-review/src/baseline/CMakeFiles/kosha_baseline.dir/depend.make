# Empty dependencies file for kosha_baseline.
# This may be replaced when dependencies are built.

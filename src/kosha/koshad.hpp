#pragma once

// koshad — the Kosha loopback daemon (paper §4, §5).
//
// One koshad runs per participating host. It exposes the NFS RPC
// vocabulary against the virtual /kosha namespace: it locates the storage
// node for each path (directory-name hashing through Pastry, following
// special links for distributed/redirected directories), forwards the RPC
// to that node's NFS server, mirrors mutations to the primary's replicas,
// and hands clients *virtual* handles so failures can be masked by
// re-resolving the stored path on a promoted replica.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "kosha/replication.hpp"
#include "kosha/runtime.hpp"
#include "kosha/virtual_handles.hpp"
#include "nfs/nfs_client.hpp"

namespace kosha {

class Histogram;

/// Reply carrying a virtual handle plus attributes (LOOKUP/CREATE/MKDIR).
struct VhReply {
  VirtualHandle handle;
  fs::Attr attr;
};

/// Daemon-level counters (drive the §6.1.2 overhead-model comparison and
/// the chaos-soak determinism guard).
struct KoshadStats {
  std::uint64_t rpcs_forwarded = 0;  // NFS RPCs sent to storage nodes
  std::uint64_t dht_lookups = 0;     // overlay routes performed
  std::uint64_t dht_hops = 0;        // total overlay hops across routes
  std::uint64_t remote_rpcs = 0;     // RPCs whose storage node != this host
  std::uint64_t failovers = 0;       // re-resolve rounds after retryable errors
  std::uint64_t failed_failovers = 0;  // ladders exhausted without recovery
  std::uint64_t redirects = 0;       // capacity redirections performed
  std::uint64_t replica_reads = 0;   // reads served by a replica node
  std::uint64_t degraded_reads = 0;  // reads a replica served because the
                                     // primary was unreachable
  std::uint64_t mirror_rpcs = 0;     // replica mirror messages this daemon's
                                     // mutations fanned out
  std::uint64_t ladder_deadline_aborts = 0;  // failover rounds skipped because
                                             // the op's deadline had passed

  friend bool operator==(const KoshadStats&, const KoshadStats&) = default;
};

class Koshad {
 public:
  /// `boot` identifies this daemon incarnation (see RpcContext::boot): a
  /// host revived after a crash must get a value it never used before, or
  /// its restarted xid counter could match servers' duplicate-request
  /// cache entries from its previous life.
  Koshad(Runtime* runtime, net::HostId host, std::uint64_t boot = 0);

  [[nodiscard]] net::HostId host() const { return host_; }

  // --- the virtual NFS interface ------------------------------------------
  [[nodiscard]] nfs::NfsResult<VirtualHandle> root();
  [[nodiscard]] nfs::NfsResult<VhReply> lookup(VirtualHandle dir, std::string_view name);
  [[nodiscard]] nfs::NfsResult<fs::Attr> getattr(VirtualHandle obj);
  [[nodiscard]] nfs::NfsResult<fs::Attr> set_mode(VirtualHandle obj, std::uint32_t mode);
  [[nodiscard]] nfs::NfsResult<fs::Attr> truncate(VirtualHandle obj, std::uint64_t size);
  [[nodiscard]] nfs::NfsResult<nfs::ReadReply> read(VirtualHandle file, std::uint64_t offset,
                                                    std::uint32_t count);
  [[nodiscard]] nfs::NfsResult<std::uint32_t> write(VirtualHandle file, std::uint64_t offset,
                                                    std::string_view data);
  [[nodiscard]] nfs::NfsResult<VhReply> create(VirtualHandle dir, std::string_view name,
                                               std::uint32_t mode = 0644,
                                               std::uint32_t uid = 0,
                                               std::uint32_t gid = 0);
  [[nodiscard]] nfs::NfsResult<VhReply> mkdir(VirtualHandle dir, std::string_view name,
                                              std::uint32_t mode = 0755,
                                              std::uint32_t uid = 0,
                                              std::uint32_t gid = 0);
  [[nodiscard]] nfs::NfsResult<Unit> remove(VirtualHandle dir, std::string_view name);
  [[nodiscard]] nfs::NfsResult<Unit> rmdir(VirtualHandle dir, std::string_view name);
  [[nodiscard]] nfs::NfsResult<Unit> rename(VirtualHandle from_dir, std::string_view from_name,
                                            VirtualHandle to_dir, std::string_view to_name);
  [[nodiscard]] nfs::NfsResult<nfs::ReaddirReply> readdir(VirtualHandle dir);

  /// Recursive delete through the virtual interface (convenience; also the
  /// delete half of distributed-directory renames).
  [[nodiscard]] nfs::NfsResult<Unit> remove_tree(VirtualHandle dir, std::string_view name);
  /// Recursive copy through the virtual interface (paper §4.1.4: renaming
  /// distributed subdirectories is "a copy ... followed by a delete").
  [[nodiscard]] nfs::NfsResult<Unit> copy_tree(VirtualHandle src_dir, std::string_view src_name,
                                               VirtualHandle dst_dir,
                                               std::string_view dst_name);

  [[nodiscard]] const KoshadStats& stats() const { return stats_; }
  [[nodiscard]] const VirtualHandleTable& handle_table() const { return vht_; }
  [[nodiscard]] Runtime& runtime() const { return *runtime_; }
  /// This daemon's NFS client — read-only, for aggregating its
  /// overload-control counters into the cluster's overload.* gauges.
  [[nodiscard]] const nfs::NfsClient& nfs_client() const { return client_; }

 private:
  /// A virtual path resolved to its storage node.
  struct Resolved {
    net::HostId host = net::kInvalidHost;
    nfs::FileHandle handle;
    std::string stored_path;
    fs::FileType type = fs::FileType::kDirectory;
    fs::Attr attr{};
  };

  /// Run `fn(resolved)` against the cached handle; on a retryable error
  /// (unreachable/timed-out/stale) re-resolve the path from scratch,
  /// rebind the virtual handle, and retry — the paper's transparent fault
  /// handling (§4.4) widened into a bounded ladder. `fn` may be invoked
  /// several times: closures wrapping a non-idempotent RPC must remember a
  /// kTimedOut from that RPC (it may have executed with its reply lost)
  /// and adopt the already-applied result on a later invocation instead of
  /// surfacing a spurious kExist/kNoEnt. Rounds run back-to-back on this
  /// thread, so nothing else can touch the target path between them.
  ///
  /// Thin type-erasure shim (defined at the bottom of this header) over
  /// failover_ladder, which owns the retry policy.
  template <typename Fn>
  auto with_handle(VirtualHandle vh, Fn&& fn);

  /// The type-erased core of with_handle (koshad_failover.cpp): drives
  /// `attempt` through the bounded re-resolve ladder and returns the final
  /// status. `attempt` reports kOk or the operation's error status; any
  /// non-status payload stays on the with_handle side.
  [[nodiscard]] nfs::NfsStat failover_ladder(
      VirtualHandle vh, const std::function<nfs::NfsStat(const Resolved&)>& attempt);

  /// Resolve a virtual path; `fresh` bypasses (and repopulates) the cache —
  /// used on the failover path after an RPC error.
  [[nodiscard]] nfs::NfsResult<Resolved> resolve_path(const std::string& path, bool fresh);
  /// Resolve one child entry of an already-resolved parent directory.
  [[nodiscard]] nfs::NfsResult<Resolved> resolve_entry(const Resolved& parent,
                                                       const std::string& path,
                                                       std::string_view name, bool fresh);

  /// Route a key through the overlay, updating daemon statistics.
  [[nodiscard]] pastry::RouteResult route(pastry::Key key);
  /// Storage host of an overlay node.
  [[nodiscard]] net::HostId host_of(pastry::NodeId node) const;

  /// Walk `stored_path` component by component on `host` (lookup RPCs).
  [[nodiscard]] nfs::NfsResult<nfs::HandleReply> remote_lookup_path(
      net::HostId host, const std::string& stored_path);
  /// mkdir -p over RPC on `host`; returns the deepest directory's handle.
  /// `leaf_mode`/`leaf_uid`/`leaf_gid` apply to the final component only.
  [[nodiscard]] nfs::NfsResult<nfs::HandleReply> remote_mkdir_p(net::HostId host,
                                                                const std::string& stored_path,
                                                                std::uint32_t leaf_mode = 0755,
                                                                std::uint32_t leaf_uid = 0,
                                                                std::uint32_t leaf_gid = 0);

  /// Remove now-empty scaffolding directories bottom-up starting at
  /// `cursor`, stopping at a non-empty directory or /.a itself (paper
  /// §4.1.5). `rm` (may be null) mirrors each removal to the replicas.
  void prune_scaffolding(net::HostId host, std::string cursor, ReplicaManager* rm);

  /// Pick the storage node for a new distributed directory, applying
  /// capacity redirection (paper §3.3). Returns the chosen node and the
  /// effective (possibly salted) name.
  [[nodiscard]] nfs::NfsResult<std::pair<pastry::NodeId, std::string>> place_directory(
      std::string_view name);

  /// Optional read path via a replica copy (the §4.2 future-work
  /// optimization). Returns nullopt when the primary should serve the read
  /// (its round-robin turn, no replicas, or the replica copy unreadable).
  [[nodiscard]] std::optional<nfs::NfsResult<nfs::ReadReply>> try_replica_read(
      const Resolved& resolved, std::uint64_t offset, std::uint32_t count);

  /// Degraded read: the primary copy is unreachable (retryable error) but
  /// still owns the key; serve the read from any reachable replica copy.
  /// Returns nullopt when no replica could serve it.
  [[nodiscard]] std::optional<nfs::NfsResult<nfs::ReadReply>> degraded_replica_read(
      const Resolved& resolved, std::uint64_t offset, std::uint32_t count);

  [[nodiscard]] ReplicaManager* manager_of(net::HostId host) const {
    return runtime_->replica_manager(host);
  }

  /// Record an RPC destined for `host` in the remote/local statistics.
  void note_forward(net::HostId host);
  /// Charge the fixed loopback interposition cost of one client RPC.
  void charge_interposition();

  [[nodiscard]] static bool is_error_retryable(nfs::NfsStat status) {
    // kCorrupt rides the same ladder: a hash-verify failure on the primary
    // copy is a degraded read served from a replica, exactly like an
    // unreachable primary (the anti-entropy sweep repairs it later).
    // kOverloaded is retryable the same way: the shed attempt certainly
    // did not execute, but an *earlier* attempt under the same xid may
    // have — so the ladder keeps its maybe-executed (adoption) rules.
    return status == nfs::NfsStat::kUnreachable || status == nfs::NfsStat::kTimedOut ||
           status == nfs::NfsStat::kStale || status == nfs::NfsStat::kCorrupt ||
           status == nfs::NfsStat::kOverloaded;
  }
  [[nodiscard]] static bool valid_user_name(std::string_view name);

  /// Cluster tracer (null when tracing is off).
  [[nodiscard]] Tracer* tracer() const { return runtime_->tracer; }

  Runtime* runtime_;
  net::HostId host_;
  nfs::NfsClient client_;
  VirtualHandleTable vht_;
  KoshadStats stats_;
  /// Round-robin cursor and handle cache for replica reads.
  std::uint64_t replica_read_cursor_ = 0;
  std::unordered_map<std::string, nfs::FileHandle> replica_handle_cache_;
  /// Resolved once at construction (null when metrics are off).
  Histogram* route_hops_hist_ = nullptr;
  Histogram* failover_depth_hist_ = nullptr;
};

template <typename Fn>
auto Koshad::with_handle(VirtualHandle vh, Fn&& fn) {
  using Ret = std::invoke_result_t<Fn, const Resolved&>;
  // Failed attempts carry only a status, so the ladder can run type-erased;
  // `last` keeps the one payload that matters — the successful attempt's.
  std::optional<Ret> last;
  const nfs::NfsStat status = failover_ladder(vh, [&](const Resolved& r) {
    last.emplace(fn(r));
    return last->ok() ? nfs::NfsStat::kOk : last->error();
  });
  if (status == nfs::NfsStat::kOk) return *std::move(last);
  return Ret(status);
}

}  // namespace kosha

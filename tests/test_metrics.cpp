// Metrics registry: instrument semantics, deterministic export, and the
// zero-overhead-when-off guarantee (an instrumented-but-disabled cluster run
// is numerically identical to one without observability).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

TEST(Histogram, TracksCountSumExtremes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  h.record(3.0);
  h.record(7.0);
  h.record(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 110.0);
  EXPECT_EQ(h.min(), 3.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 110.0 / 3.0, 1e-9);
}

TEST(Histogram, PercentilesInterpolateWithinObservedRange) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  // Linear-interpolated estimates must stay inside the observed range and
  // be monotone in p.
  const double p50 = h.percentile(50.0);
  const double p95 = h.percentile(95.0);
  const double p99 = h.percentile(99.0);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 of 1..100 should land near the middle, not at a bucket edge.
  EXPECT_GT(p50, 30.0);
  EXPECT_LT(p50, 70.0);
}

TEST(Histogram, SingleSampleCollapsesAllPercentiles) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(42.0);
  EXPECT_EQ(h.percentile(1.0), 42.0);
  EXPECT_EQ(h.percentile(50.0), 42.0);
  EXPECT_EQ(h.percentile(99.0), 42.0);
}

TEST(MetricsRegistry, PointersAreStableAndNamed) {
  MetricsRegistry reg;
  Counter* c = reg.counter("a.ops");
  c->inc();
  // Registering more instruments must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) (void)reg.counter("c" + std::to_string(i));
  c->inc(2);
  EXPECT_EQ(reg.counter("a.ops"), c);
  EXPECT_EQ(reg.find_counter("a.ops")->value(), 3u);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
}

TEST(MetricsRegistry, ExportsParseAndAreDeterministic) {
  const auto fill = [](MetricsRegistry& reg) {
    reg.counter("z.last")->inc(5);
    reg.counter("a.first")->inc();
    reg.gauge("g.load")->set(0.25);
    Histogram* h = reg.histogram("lat.us");
    h->record(10.0);
    h->record(200.0);
  };
  MetricsRegistry one;
  MetricsRegistry two;
  fill(one);
  fill(two);
  EXPECT_EQ(one.to_json(), two.to_json());
  EXPECT_EQ(one.to_csv(), two.to_csv());

  const auto parsed = parse_json(one.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const JsonValue* counters = parsed.value().find("counters");
  ASSERT_NE(counters, nullptr);
  // Sorted-map export: "a.first" precedes "z.last".
  ASSERT_EQ(counters->members().size(), 2u);
  EXPECT_EQ(counters->members()[0].first, "a.first");
  const JsonValue* hist = parsed.value().find("histograms")->find("lat.us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->number_or("count", 0), 2.0);
  EXPECT_EQ(hist->number_or("min", 0), 10.0);
  EXPECT_EQ(hist->number_or("max", 0), 200.0);

  EXPECT_EQ(one.to_csv().substr(0, 22), "type,name,field,value\n");
}

/// Drive the same mixed workload against a cluster; returns the final
/// virtual time so callers can compare runs.
SimDuration run_workload(KoshaCluster& cluster) {
  KoshaMount mount(&cluster.daemon(0));
  Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    const std::string dir = "/d" + std::to_string(rng.next_below(4));
    const std::string file = dir + "/f" + std::to_string(i);
    EXPECT_TRUE(mount.mkdir_p(dir).ok());
    EXPECT_TRUE(mount.write_file(file, rng.next_name(24)).ok());
    EXPECT_TRUE(mount.read_file(file).ok());
    EXPECT_TRUE(mount.stat(file).ok());
  }
  return cluster.clock().now();
}

TEST(Observability, DisabledInstrumentationIsNumericallyInvisible) {
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.replicas = 2;
  config.seed = 11;
  KoshaCluster plain(config);

  config.observability.metrics = true;
  config.observability.tracing = true;
  KoshaCluster observed(config);

  // Identical virtual end time and identical network accounting: recording
  // never advances the clock and never consumes RNG.
  EXPECT_EQ(run_workload(plain), run_workload(observed));
  EXPECT_EQ(plain.network().stats(), observed.network().stats());
  EXPECT_GT(observed.tracer().spans().size(), 0u);
  EXPECT_EQ(plain.tracer().spans().size(), 0u);
}

TEST(Observability, DisabledClusterStillExportsDerivedGauges) {
  ClusterConfig config;
  config.nodes = 4;
  config.seed = 3;
  KoshaCluster cluster(config);  // observability off
  (void)run_workload(cluster);

  const auto parsed = parse_json(cluster.export_metrics_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  // Hot-path instruments never fired...
  EXPECT_TRUE(parsed.value().find("counters")->members().empty());
  EXPECT_TRUE(parsed.value().find("histograms")->members().empty());
  // ...but the gauges mirrored from NetStats/server/koshad still carry the
  // run's numbers.
  const JsonValue* gauges = parsed.value().find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_GT(gauges->number_or("net.messages", 0), 0.0);
  EXPECT_GT(gauges->number_or("net.proc.WRITE.messages", 0), 0.0);
  EXPECT_GT(gauges->number_or("node.0.server.rpcs", 0), 0.0);
}

TEST(Observability, EnabledClusterRecordsHotPathInstruments) {
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.replicas = 2;
  config.seed = 11;
  config.observability.metrics = true;
  KoshaCluster cluster(config);
  (void)run_workload(cluster);

  const MetricsRegistry& reg = cluster.metrics();
  ASSERT_NE(reg.find_counter("nfs.client.WRITE.ok"), nullptr);
  EXPECT_GT(reg.find_counter("nfs.client.WRITE.ok")->value(), 0u);
  ASSERT_NE(reg.find_histogram("mount.write_file.latency_us"), nullptr);
  EXPECT_EQ(reg.find_histogram("mount.write_file.latency_us")->count(), 32u);
  ASSERT_NE(reg.find_counter("replica.mirror.ops"), nullptr);
  EXPECT_GT(reg.find_counter("replica.mirror.ops")->value(), 0u);
  ASSERT_NE(reg.find_histogram("koshad.overlay.route_hops"), nullptr);
  EXPECT_GT(reg.find_histogram("koshad.overlay.route_hops")->count(), 0u);
}

}  // namespace
}  // namespace kosha

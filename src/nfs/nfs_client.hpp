#pragma once

// NFS client: issues RPCs to servers across the simulated network.
//
// Destination selection uses the server id embedded in the (opaque) handle.
// Every call charges request and reply messages on the network. Two
// failure regimes are distinguished:
//   * hard-down — the host is marked dead (or its server was erased from
//     the directory, e.g. retirement): one timeout, kUnreachable, no
//     retries. This is the error Kosha's transparent fault handling reacts
//     to (paper §4.4).
//   * transient — the fault plan lost a message (drop/brownout/partition):
//     the client times out, backs off on the virtual clock, and
//     retransmits under the *same* xid up to RetryPolicy::max_attempts.
//     Non-idempotent retransmissions are made safe by the server's
//     duplicate-request cache (see nfs_server.hpp).
//
// When attempts run out the final status depends on what was delivered:
// kUnreachable if no request ever reached the server (the op certainly did
// not execute — safe to re-issue), kTimedOut if at least one did (the op
// may have executed with its reply lost — re-issuing a non-idempotent op
// requires adopting an already-applied result; see koshad's ladder).
//
// A third regime exists when RetryPolicy::response_timeout > 0 (the
// event-driven model only): a *delivered* request whose reply has not come
// back within the timeout is abandoned and retransmitted. The abandoned
// copy keeps queueing and executing server-side — that dead work is the
// raw material of metastable congestive collapse, which is why abandonment
// is only ever paired with the overload controls configured through
// configure_overload(): a token-bucket retry budget bounds retransmission
// amplification, a per-server circuit breaker stops offering load to a
// host that keeps failing, and kOverloaded admission rejections back off
// on the budget instead of retransmitting naively.

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "common/event_loop.hpp"
#include "common/rng.hpp"
#include "common/tracing.hpp"
#include "nfs/nfs_server.hpp"
#include "nfs/retry_policy.hpp"
#include "nfs/wire.hpp"

namespace kosha {
class Counter;
class Histogram;
}  // namespace kosha

namespace kosha::nfs {

/// Host -> server registry (the simulation's stand-in for portmap/mountd).
class ServerDirectory {
 public:
  void add(NfsServer* server) { servers_[server->host()] = server; }
  void erase(net::HostId host) { servers_.erase(host); }
  [[nodiscard]] NfsServer* find(net::HostId host) const {
    const auto it = servers_.find(host);
    return it == servers_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<net::HostId, NfsServer*> servers_;
};

class NfsClient {
 public:
  /// `boot` is this client incarnation's verifier (see RpcContext::boot):
  /// give every restart of a host's client a value never used by that host
  /// before, so its restarted xid counter cannot match duplicate-request
  /// cache entries left over from the previous incarnation.
  NfsClient(net::SimNetwork* network, const ServerDirectory* directory, net::HostId self,
            RetryPolicy retry = {}, std::uint64_t jitter_seed = 0, std::uint64_t boot = 0);

  [[nodiscard]] net::HostId self() const { return self_; }
  [[nodiscard]] std::uint64_t boot() const { return boot_; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }

  /// Arm the client-side overload controls (retry budget, per-server
  /// circuit breakers, admission checks, deadline propagation). With
  /// `config.enabled == false` — the default state — every call path is
  /// numerically identical to a client without overload control.
  void configure_overload(const OverloadControlConfig& config) {
    overload_ = config;
    budget_.reset();
    breakers_.clear();
    if (overload_.enabled) budget_.emplace(overload_.retry_budget_cap, overload_.retry_budget_refill);
  }
  [[nodiscard]] const OverloadControlConfig& overload_config() const { return overload_; }

  /// Absolute deadline stamped into every subsequent RPC's context (see
  /// RpcContext::deadline): koshad sets it from its op budget at handler
  /// entry so servers and the failover ladder stop burning time on work
  /// the caller has abandoned. 0 (the default) propagates no deadline.
  void set_op_deadline(SimDuration deadline) { op_deadline_ = deadline; }
  [[nodiscard]] SimDuration op_deadline() const { return op_deadline_; }

  /// Snapshot of this client's overload-control counters (budget and
  /// breakers). All zero while overload control is disabled.
  [[nodiscard]] OverloadClientStats overload_stats() const;

  /// The completion-based RPC core of the event-driven execution model.
  /// Sends the request now; every later step — wire arrival, admission to
  /// the destination's service queue, execution, the reply's wire trip,
  /// timeout detection, and retry backoff — is a scheduled event on the
  /// network's event loop, so other work interleaves with this RPC in
  /// virtual time. `done` fires from the loop with the final result (the
  /// reply, or kTimedOut/kUnreachable once retries are exhausted — same
  /// semantics as the synchronous path, which is now a thin wrapper that
  /// drives the loop until its own completion fires). Requires
  /// `network()->loop() != nullptr`.
  template <typename ReplyT, typename Invoke, typename ReplyBytes>
  void call_async(std::size_t proc_slot, net::HostId server, std::size_t request_bytes,
                  Invoke invoke, ReplyBytes reply_bytes,
                  std::function<void(NfsResult<ReplyT>)> done);

  /// Fetch the root handle of a server's export (MOUNT protocol stand-in).
  [[nodiscard]] NfsResult<FileHandle> mount(net::HostId server);

  [[nodiscard]] NfsResult<HandleReply> lookup(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<fs::Attr> getattr(FileHandle obj);
  [[nodiscard]] NfsResult<fs::Attr> set_mode(FileHandle obj, std::uint32_t mode);
  [[nodiscard]] NfsResult<fs::Attr> truncate(FileHandle obj, std::uint64_t size);
  [[nodiscard]] NfsResult<ReadReply> read(FileHandle file, std::uint64_t offset,
                                          std::uint32_t count);
  [[nodiscard]] NfsResult<std::uint32_t> write(FileHandle file, std::uint64_t offset,
                                               std::string_view data);
  /// The abbreviated wire sattr3 carries {mode, uid}; gid rides the
  /// in-process invocation only, so message sizes (and every charged byte)
  /// are unchanged by the gid plumbing.
  [[nodiscard]] NfsResult<HandleReply> create(FileHandle dir, std::string_view name,
                                              std::uint32_t mode = 0644,
                                              std::uint32_t uid = 0, std::uint32_t gid = 0);
  [[nodiscard]] NfsResult<HandleReply> mkdir(FileHandle dir, std::string_view name,
                                             std::uint32_t mode = 0755, std::uint32_t uid = 0,
                                             std::uint32_t gid = 0);
  [[nodiscard]] NfsResult<HandleReply> symlink(FileHandle dir, std::string_view name,
                                               std::string_view target);
  [[nodiscard]] NfsResult<std::string> readlink(FileHandle link);
  [[nodiscard]] NfsResult<Unit> remove(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<Unit> rmdir(FileHandle dir, std::string_view name);
  /// Both directories must live on the same server (always true in Kosha:
  /// files in one directory share a node).
  [[nodiscard]] NfsResult<Unit> rename(FileHandle from_dir, std::string_view from_name,
                                       FileHandle to_dir, std::string_view to_name);
  [[nodiscard]] NfsResult<ReaddirReply> readdir(FileHandle dir);
  [[nodiscard]] NfsResult<FsstatReply> fsstat(net::HostId server);

 private:
  /// What happened to one request transmission.
  enum class SendOutcome {
    kSent,      // delivered; *out points at the server
    kLost,      // lost in transit (fault plan): worth retrying
    kHardDown,  // server dead or absent: fail fast, no retries
  };

  SendOutcome send_request(net::HostId server, std::size_t request_bytes, NfsServer** out);
  [[nodiscard]] bool deliver_reply(net::HostId server, std::size_t reply_bytes);
  /// Exponential backoff (with jitter) before retry `attempt`; consumes
  /// one jitter draw. The serial path charges it on the clock, the async
  /// path turns it into a timer event.
  [[nodiscard]] SimDuration backoff_duration(unsigned attempt);
  /// Charge the exponential backoff (with jitter) before retry `attempt`.
  void backoff(unsigned attempt);

  /// Run one RPC through the full retry state machine. `invoke` performs
  /// the server-side procedure; `reply_bytes` sizes the reply message for
  /// the returned value. Wraps transact_impl with a per-procedure span and
  /// latency/outcome metrics when observability is on.
  template <typename ReplyT, typename Invoke, typename ReplyBytes>
  NfsResult<ReplyT> transact(NfsProc proc, net::HostId server, std::size_t request_bytes,
                             Invoke&& invoke, ReplyBytes&& reply_bytes);

  template <typename ReplyT, typename Invoke, typename ReplyBytes>
  NfsResult<ReplyT> transact_impl(std::size_t proc_slot, net::HostId server,
                                  std::size_t request_bytes, Invoke&& invoke,
                                  ReplyBytes&& reply_bytes);

  /// Lazily-resolved instruments for one procedure (null when metrics off).
  struct ProcMetrics {
    bool resolved = false;
    Histogram* latency = nullptr;
    Counter* ok = nullptr;
    Counter* error = nullptr;
  };
  [[nodiscard]] ProcMetrics& proc_metrics(NfsProc proc);

  /// RPC identity for a non-idempotent call, carrying the current trace
  /// context (invalid when tracing is off) and the op deadline (zero when
  /// none was stamped).
  [[nodiscard]] RpcContext rpc_ctx(std::uint32_t xid) const;

  /// The circuit breaker guarding `server`, created on first use. Null
  /// while overload control is disabled (or breakers are configured off),
  /// so call sites stay single-branch on the legacy path.
  [[nodiscard]] CircuitBreaker* breaker_for(net::HostId server);

  std::uint32_t next_xid() { return ++xid_; }

  /// Replies are charged with a fixed header estimate plus payload; only
  /// the call direction is fully XDR-encoded (see nfs/wire.hpp).
  static constexpr std::size_t kReplyBytes = 96;

  net::SimNetwork* network_;
  const ServerDirectory* directory_;
  net::HostId self_;
  std::uint32_t xid_ = 0;
  std::uint64_t boot_ = 0;
  RetryPolicy retry_;
  Rng jitter_rng_;
  OverloadControlConfig overload_{};
  /// Token bucket bounding retransmissions; engaged iff overload control
  /// is enabled.
  std::optional<RetryBudget> budget_;
  /// Per-server breakers, ordered so stats aggregation iterates
  /// deterministically.
  std::map<net::HostId, CircuitBreaker> breakers_;
  /// kOverloaded outcomes observed by this client (admission rejections
  /// and deadline bounces reaching it as replies).
  std::uint64_t overloaded_replies_ = 0;
  SimDuration op_deadline_{};
  std::array<ProcMetrics, net::kNetProcSlots> proc_metrics_{};
};

// ---------------------------------------------------------------------------
// call_async — the event-driven RPC state machine
// ---------------------------------------------------------------------------
// One heap-allocated Call per RPC, kept alive by the events it schedules.
// The timeline replays the serial retry loop exactly when nothing else is
// in flight: the fault plan judges each message at the same virtual
// instants, the jitter stream is drawn in the same order, and every
// NetStats counter moves identically — that equivalence is what lets the
// synchronous wrapper switch execution models without changing a number.
//
// With response_timeout > 0 ("timed mode") the machine grows a second
// track: every transmission arms an abandonment timer, and a request's
// server-side chain (arrive/execute/depart) keeps running even after the
// client abandoned the attempt — the `finished` latch and per-chain
// `born` attempt stamp keep stale chains from touching the retry state,
// while their queueing and service time remain real (that dead work is
// exactly what the overload experiments measure). Overload control hooks
// in at three points: start() fails fast on an open breaker, arrive()
// asks the network's admission control before occupying the queue, and
// execute() refuses attempts whose deadline passed while they queued.

template <typename ReplyT, typename Invoke, typename ReplyBytes>
void NfsClient::call_async(std::size_t proc_slot, net::HostId server,
                           std::size_t request_bytes, Invoke invoke,
                           ReplyBytes reply_bytes,
                           std::function<void(NfsResult<ReplyT>)> done) {
  struct Call : std::enable_shared_from_this<Call> {
    NfsClient* c = nullptr;
    EventLoop* loop = nullptr;
    std::size_t slot = 0;
    net::HostId server = net::kInvalidHost;
    std::size_t request_bytes = 0;
    Invoke invoke;
    ReplyBytes reply_bytes;
    std::function<void(NfsResult<ReplyT>)> done;
    unsigned attempt = 0;
    /// Whether any request was delivered (see transact_impl): decides
    /// kTimedOut vs kUnreachable when attempts run out. In timed mode a
    /// delivered request counts immediately — the queued copy may still
    /// execute after the attempt is abandoned, so "delivered" is the only
    /// safe proxy for "may have executed".
    bool executed = false;
    /// Completion latch (timed mode): a stale chain's late reply must not
    /// complete the op twice. Never set before completion on the legacy
    /// wait-forever path, where only one chain ever exists.
    bool finished = false;
    /// Pending abandonment timer (timed mode only), cancelled when the op
    /// completes first.
    EventLoop::EventId abandon_timer = EventLoop::kInvalidEvent;
    /// The enclosing rpc.<proc> span, captured synchronously at submit
    /// time — under interleaved execution the tracer's context stack
    /// belongs to whichever client is running, so the completion events
    /// must carry their own parent for the wait spans they emit.
    TraceContext trace{};

    Call(Invoke&& inv, ReplyBytes&& rb) : invoke(std::move(inv)), reply_bytes(std::move(rb)) {}

    /// Record a wait interval ([start, end], known rather than lived
    /// through) as a finished child span of the rpc span. Inert when
    /// tracing is off or the RPC runs outside any trace.
    void emit_wait_span(const char* name, std::uint32_t host, SimDuration start,
                        SimDuration end) {
      Tracer* tracer = c->network_->tracer();
      if (tracer == nullptr || !tracer->enabled() || !trace.valid()) return;
      (void)tracer->emit_span(trace, name, host, start, end);
    }

    /// Timed mode is in force when the policy sets a response timeout.
    [[nodiscard]] bool timed() const { return c->retry_.response_timeout.ns > 0; }

    /// Single exit point: latch, cancel the abandonment timer, fire done.
    void complete(NfsResult<ReplyT> result) {
      if (finished) return;
      finished = true;
      if (abandon_timer != EventLoop::kInvalidEvent) {
        (void)loop->cancel(abandon_timer);
        abandon_timer = EventLoop::kInvalidEvent;
      }
      done(std::move(result));
    }

    void give_up() { complete(executed ? NfsStat::kTimedOut : NfsStat::kUnreachable); }

    /// Retransmission decision shared by abandonment and kOverloaded
    /// rejections (timed mode): pay for the retry out of the budget, back
    /// off, and re-enter start() — or fail fast when attempts or tokens
    /// run out. `give_up_status` is the certainly-not-executed verdict;
    /// a delivered request always degrades it to kTimedOut.
    void budgeted_retry(NfsStat give_up_status) {
      if (attempt + 1 >= std::max(1u, c->retry_.max_attempts)) {
        complete(executed ? NfsStat::kTimedOut : give_up_status);
        return;
      }
      if (c->overload_.enabled && c->budget_.has_value() && !c->budget_->spend()) {
        // Budget exhausted: refusing to retransmit is the amplification
        // bound that keeps a flash crowd from becoming metastable.
        complete(executed ? NfsStat::kTimedOut : NfsStat::kOverloaded);
        return;
      }
      c->network_->count_retry(slot);
      const SimDuration wait = c->backoff_duration(attempt);
      ++attempt;
      const SimDuration now = loop->now();
      emit_wait_span("rpc.backoff", c->self_, now, now + wait);
      auto self = this->shared_from_this();
      loop->schedule_after(wait, "rpc.backoff", [self] { self->start(); });
    }

    /// The abandonment timer fired: no reply within response_timeout.
    void abandon(unsigned expected_attempt) {
      if (finished || attempt != expected_attempt) return;  // stale timer
      abandon_timer = EventLoop::kInvalidEvent;
      c->network_->note_timeout();
      c->network_->note_proc_timeout(slot);
      const SimDuration now = loop->now();
      emit_wait_span("rpc.timeout", c->self_, now - c->retry_.response_timeout, now);
      if (CircuitBreaker* b = c->breaker_for(server)) b->on_failure(now);
      budgeted_retry(NfsStat::kUnreachable);
    }

    /// Count a timeout now; let its duration elapse as an event, then
    /// continue with `next`.
    void timeout_then(void (Call::*next)()) {
      c->network_->note_timeout();
      c->network_->note_proc_timeout(slot);
      const SimDuration now = loop->now();
      emit_wait_span("rpc.timeout", c->self_, now, now + c->network_->config().rpc_timeout);
      auto self = this->shared_from_this();
      loop->schedule_after(c->network_->config().rpc_timeout, "rpc.timeout",
                           [self, next] { ((*self).*next)(); });
    }

    void retry_or_fail() {
      if (attempt + 1 >= std::max(1u, c->retry_.max_attempts)) {
        give_up();
        return;
      }
      c->network_->count_retry(slot);
      const SimDuration wait = c->backoff_duration(attempt);
      ++attempt;
      const SimDuration now = loop->now();
      emit_wait_span("rpc.backoff", c->self_, now, now + wait);
      auto self = this->shared_from_this();
      loop->schedule_after(wait, "rpc.backoff", [self] { self->start(); });
    }

    /// One transmission attempt (retransmissions re-enter here under the
    /// same xid — the invoke closure carries it).
    void start() {
      NfsServer* s = c->directory_->find(server);
      if (s == nullptr || !c->network_->is_up(server)) {
        // Permanent death: one timeout, no retries (see transact_impl).
        c->network_->note_timeout();
        c->network_->note_proc_timeout(slot);
        const SimDuration now = loop->now();
        emit_wait_span("rpc.timeout", c->self_, now,
                       now + c->network_->config().rpc_timeout);
        auto self = this->shared_from_this();
        loop->schedule_after(c->network_->config().rpc_timeout, "rpc.timeout",
                             [self] { self->give_up(); });
        return;
      }
      if (CircuitBreaker* b = c->breaker_for(server); b != nullptr && !b->allow(loop->now())) {
        // Open breaker: fail fast without offering the wire any load (the
        // breaker's own fast_fails counter records the refusal).
        const SimDuration now = loop->now();
        emit_wait_span("rpc.breaker_open", c->self_, now, now);
        auto self = this->shared_from_this();
        loop->schedule_at(now, "rpc.reject", [self] { self->complete(NfsStat::kOverloaded); });
        return;
      }
      const auto plan = c->network_->plan_message(c->self_, server, request_bytes, loop->now());
      if (timed()) {
        // Delivered or lost, the client's view is identical: wait
        // response_timeout for a reply, then abandon the attempt. The
        // per-transmission deadline rides the chain by value so stale
        // chains judge themselves against their own patience window.
        const SimDuration dl = loop->now() + c->retry_.response_timeout;
        if (plan.delivered) {
          executed = true;
          c->network_->note_proc_message(slot, request_bytes);
          auto self = this->shared_from_this();
          loop->schedule_at(plan.arrival, "rpc.arrive",
                            [self, dl, born = attempt] { self->arrive(dl, born); });
        }
        auto self = this->shared_from_this();
        abandon_timer = loop->schedule_after(
            c->retry_.response_timeout, "rpc.abandon",
            [self, expected = attempt] { self->abandon(expected); });
        return;
      }
      if (!plan.delivered) {
        timeout_then(&Call::retry_or_fail);
        return;
      }
      c->network_->note_proc_message(slot, request_bytes);
      auto self = this->shared_from_this();
      loop->schedule_at(plan.arrival, "rpc.arrive",
                        [self, born = attempt] { self->arrive(SimDuration{}, born); });
    }

    /// The request reached the server: pass admission control, then queue
    /// behind whatever it is already serving (this wait is the measured
    /// `net.queue_delay`). `dl` is this transmission's abandonment
    /// deadline (zero in legacy mode); `born` the attempt that sent it.
    void arrive(SimDuration dl, unsigned born) {
      const SimDuration arrival = loop->now();
      if (c->overload_.enabled) {
        if (c->network_->admit(server, arrival, dl, false) != net::SimNetwork::Admit::kAdmit) {
          // Bounced at the door: a rejection costs one cheap reply
          // message instead of queue occupancy and service time.
          emit_wait_span("server.shed", server, arrival, arrival);
          const auto back =
              c->network_->plan_message(server, c->self_, NfsClient::kReplyBytes, arrival);
          if (back.delivered) {
            c->network_->note_proc_message(slot, NfsClient::kReplyBytes);
            auto self = this->shared_from_this();
            loop->schedule_at(back.arrival, "rpc.done", [self, born] {
              self->handle_result(NfsStat::kOverloaded, born);
            });
          } else if (!timed()) {
            // Legacy mode has no abandonment timer to fall back on, and
            // never more than one live chain: treat the lost rejection
            // like any lost reply.
            timeout_then(&Call::retry_or_fail);
          }
          return;
        }
      }
      const SimDuration begin = c->network_->begin_service(server, arrival);
      if (begin > arrival) emit_wait_span("net.queue", server, arrival, begin);
      c->network_->note_inflight(server, +1);
      auto self = this->shared_from_this();
      loop->schedule_at(begin, "rpc.execute", [self, dl, born] { self->execute(dl, born); });
    }

    void execute(SimDuration dl, unsigned born) {
      NfsServer* s = c->directory_->find(server);
      if (s == nullptr || !c->network_->is_up(server)) {
        // Died while the request sat in its queue: indistinguishable from
        // a lost reply for the client.
        c->network_->note_inflight(server, -1);
        executed = true;
        if (timed()) return;  // the abandonment timer owns the retry
        timeout_then(&Call::retry_or_fail);
        return;
      }
      if (c->overload_.enabled && dl.ns > 0 && loop->now() > dl) {
        // The client abandoned this attempt while it queued: drop the
        // dead work instead of burning service time on a reply nobody is
        // waiting for. No message goes back — the client moved on.
        c->network_->note_expired();
        c->network_->note_inflight(server, -1);
        emit_wait_span("server.expired", server, loop->now(), loop->now());
        return;
      }
      executed = true;
      // The procedure's service-time charges advance the clock from the
      // service-begin instant, so server-side spans keep real virtual
      // start/end times; the elapsed cost becomes this host's queue
      // occupancy.
      const SimDuration begin = loop->now();
      NfsResult<ReplyT> reply = invoke(*s);
      const SimDuration end = loop->now();
      c->network_->end_service(server, end);
      c->network_->note_service_time(server, end - begin);
      auto self = this->shared_from_this();
      auto boxed = std::make_shared<NfsResult<ReplyT>>(std::move(reply));
      loop->schedule_at(end, "rpc.depart",
                        [self, boxed, born] { self->depart(std::move(*boxed), born); });
    }

    /// Service finished: send the reply back over the wire.
    void depart(NfsResult<ReplyT> reply, unsigned born) {
      c->network_->note_inflight(server, -1);
      const std::size_t rb = reply_bytes(reply);
      const auto plan = c->network_->plan_message(server, c->self_, rb, loop->now());
      if (!plan.delivered) {
        // Reply lost: the op may have executed — the retransmission
        // reuses the xid so the server's DRC returns this very reply.
        if (timed()) return;  // the abandonment timer owns the retry
        timeout_then(&Call::retry_or_fail);
        return;
      }
      c->network_->note_proc_message(slot, rb);
      auto self = this->shared_from_this();
      auto boxed = std::make_shared<NfsResult<ReplyT>>(std::move(reply));
      loop->schedule_at(plan.arrival, "rpc.done",
                        [self, boxed, born] { self->handle_result(std::move(*boxed), born); });
    }

    /// A reply (or admission rejection) reached the client. `born` tells
    /// a stale chain's rejection from the live attempt's.
    void handle_result(NfsResult<ReplyT> reply, unsigned born) {
      if (finished) return;  // the op already concluded; late echo
      if (c->overload_.enabled) {
        const SimDuration now = loop->now();
        if (!reply.ok() && reply.error() == NfsStat::kOverloaded) {
          // A stale chain's rejection must not drive the live attempt's
          // retry logic — only the transmission that is still current may.
          if (born != attempt) return;
          ++c->overloaded_replies_;
          if (CircuitBreaker* b = c->breaker_for(server)) b->on_failure(now);
          if (abandon_timer != EventLoop::kInvalidEvent) {
            (void)loop->cancel(abandon_timer);
            abandon_timer = EventLoop::kInvalidEvent;
          }
          // Shed by the server: budgeted backoff, never naive retransmit.
          budgeted_retry(NfsStat::kOverloaded);
          return;
        }
        // Any substantive reply — success or an honest NFS error — means
        // the server is alive and serving.
        if (CircuitBreaker* b = c->breaker_for(server)) b->on_success();
      }
      complete(std::move(reply));
    }
  };

  // Every issued operation earns retry-budget refill; only
  // retransmissions spend (see RetryBudget).
  if (overload_.enabled && budget_.has_value()) budget_->earn();
  auto call = std::make_shared<Call>(std::move(invoke), std::move(reply_bytes));
  call->c = this;
  call->loop = network_->loop();
  call->slot = proc_slot;
  call->server = server;
  call->request_bytes = request_bytes;
  call->done = std::move(done);
  if (const Tracer* tracer = network_->tracer(); tracer != nullptr && tracer->enabled()) {
    call->trace = tracer->current();
  }
  call->start();
}

}  // namespace kosha::nfs

#pragma once

// Minimal JSON document model + parser.
//
// Exists so the observability exporters (metrics snapshots, trace logs) and
// the kosha_stat inspection tool can speak one format without an external
// dependency. Serialization lives with the producers (deterministic,
// sorted-key output); this header covers parsing and escaping.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace kosha {

/// A parsed JSON value. Objects keep insertion order (vector of pairs) so a
/// parse -> inspect round trip preserves what the producer wrote.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] static JsonValue make_null() { return JsonValue{}; }
  [[nodiscard]] static JsonValue make_bool(bool b);
  [[nodiscard]] static JsonValue make_number(double n);
  [[nodiscard]] static JsonValue make_string(std::string s);
  [[nodiscard]] static JsonValue make_array();
  [[nodiscard]] static JsonValue make_object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Convenience: find(key) as number/string with a fallback.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;

  void push_back(JsonValue v) { items_.push_back(std::move(v)); }
  void set(std::string key, JsonValue v) { members_.emplace_back(std::move(key), std::move(v)); }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse a complete JSON document. Trailing non-whitespace is an error.
[[nodiscard]] Result<JsonValue, std::string> parse_json(std::string_view text);

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Format a double the way the exporters do: integral values print with no
/// decimal point ("42"), others with up to 6 significant digits. Keeping one
/// formatter ensures byte-identical dumps across same-seed runs.
[[nodiscard]] std::string json_number(double v);

}  // namespace kosha

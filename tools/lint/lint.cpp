#include "lint/lint.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>

namespace kosha::lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------
// Just enough C++ lexing for the rules: identifiers, punctuation (with `::`
// and `->` kept whole so member access is recognizable), numbers, string and
// character literals (including raw strings — fixture snippets live inside
// them), comments, and preprocessor lines as single opaque tokens. Tokens
// inside strings and comments never reach the rules, which is what lets the
// lint test embed violating snippets as raw-string fixtures without
// tripping the repo-wide walk over its own source.

enum class TokKind { kIdent, kPunct, kNumber, kDirective };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

/// One lint annotation parsed out of a comment: allow(<slug>): <reason>.
/// Annotations without a non-empty reason are recorded as malformed so the
/// rule can refuse to be suppressed (and say why).
struct Annotation {
  std::string slug;
  bool has_reason = false;
};

struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  /// line -> annotations attached to that line (an annotation also covers
  /// the line directly below it, so a whole-line comment can precede the
  /// code it excuses).
  std::map<int, std::vector<Annotation>> annotations;
};

void parse_annotations(std::string_view comment, int line, SourceFile& out) {
  static constexpr std::string_view kTag = "kosha-lint:";
  std::size_t pos = comment.find(kTag);
  while (pos != std::string_view::npos) {
    std::size_t p = pos + kTag.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    static constexpr std::string_view kAllow = "allow(";
    if (comment.compare(p, kAllow.size(), kAllow) == 0) {
      p += kAllow.size();
      const std::size_t close = comment.find(')', p);
      if (close != std::string_view::npos) {
        Annotation ann;
        ann.slug = std::string(comment.substr(p, close - p));
        std::size_t r = close + 1;
        if (r < comment.size() && comment[r] == ':') {
          ++r;
          while (r < comment.size() && (comment[r] == ' ' || comment[r] == '\t')) ++r;
          ann.has_reason = r < comment.size();
        }
        out.annotations[line].push_back(std::move(ann));
      }
    }
    pos = comment.find(kTag, pos + kTag.size());
  }
}

void tokenize(const std::string& src, SourceFile& out) {
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r') {
      advance(1);
      continue;
    }
    // Preprocessor line (only when '#' is the first non-blank character):
    // swallow it whole, honoring backslash continuations.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i];
        advance(1);
      }
      out.tokens.push_back({TokKind::kDirective, std::move(text), start_line});
      continue;
    }
    at_line_start = false;
    // Comments (scanned for annotations, otherwise dropped).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start_line = line;
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_annotations(std::string_view(src).substr(i, end - i), start_line, out);
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      parse_annotations(std::string_view(src).substr(i, end - i), start_line, out);
      advance(end - i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, p);
      end = end == std::string::npos ? n : end + closer.size();
      advance(end - i);
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      advance((p < n ? p + 1 : n) - i);
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < n && ident_char(src[p])) ++p;
      out.tokens.push_back({TokKind::kIdent, src.substr(i, p - i), line});
      advance(p - i);
      continue;
    }
    if (c >= '0' && c <= '9') {
      std::size_t p = i;
      while (p < n && (ident_char(src[p]) || src[p] == '.' || src[p] == '\'')) ++p;
      out.tokens.push_back({TokKind::kNumber, src.substr(i, p - i), line});
      advance(p - i);
      continue;
    }
    // Punctuation; keep '::' and '->' whole so member access is one token.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
}

// ---------------------------------------------------------------------------
// Token-walk helpers
// ---------------------------------------------------------------------------

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index just past the matching closer for the opener at `open` (e.g. the
/// token after the ')' matching a '('); tokens.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    else if (is_punct(toks[i], closer) && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Index just past the '>' closing a template-argument list opened at
/// `open` (which must point at '<'); tokens.size() if it never closes
/// plausibly (a comparison rather than a template list).
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "<")) ++depth;
    else if (is_punct(toks[i], ">") && --depth == 0) return i + 1;
    else if (is_punct(toks[i], ";") || is_punct(toks[i], "{")) return toks.size();
  }
  return toks.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// Linter
// ---------------------------------------------------------------------------

struct Linter::Impl {
  Config config;
  std::vector<SourceFile> files;
  /// Names (members, locals, type aliases) declared with an unordered
  /// container type anywhere in the scanned tree; shared across files
  /// because members are declared in headers and iterated in .cpp files.
  std::set<std::string> unordered_names;
  std::set<std::string> unordered_type_aliases;

  std::vector<Diagnostic> diags;

  bool allowed(const SourceFile& f, int line, std::string_view slug) const {
    for (const int l : {line, line - 1}) {
      const auto it = f.annotations.find(l);
      if (it == f.annotations.end()) continue;
      for (const Annotation& ann : it->second) {
        if (ann.slug == slug && ann.has_reason) return true;
      }
    }
    return false;
  }

  void report(const SourceFile& f, int line, std::string rule, std::string slug,
              std::string message) {
    if (allowed(f, line, slug)) return;
    diags.push_back({f.path, line, std::move(rule), std::move(slug), std::move(message)});
  }

  bool entropy_allowlisted(const std::string& path) const {
    for (const std::string& suffix : config.entropy_allowlist) {
      if (path.size() >= suffix.size() &&
          path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
        return true;
      }
    }
    return false;
  }

  // --- pass 1: collect unordered-container declarations -------------------

  void collect_aliases(const SourceFile& f) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (t[i].text.rfind("unordered_", 0) != 0) continue;
      // using Alias = ... unordered_map<...> ...;
      for (std::size_t back = 1; back <= 6 && back <= i; ++back) {
        const std::size_t j = i - back;
        if (is_punct(t[j], ";") || is_punct(t[j], "{") || is_punct(t[j], "}")) break;
        if (is_punct(t[j], "=") && j >= 2 && t[j - 1].kind == TokKind::kIdent &&
            is_ident(t[j - 2], "using")) {
          unordered_type_aliases.insert(t[j - 1].text);
          break;
        }
      }
    }
  }

  void collect_decl_name(const std::vector<Token>& t, std::size_t after_type) {
    std::size_t j = after_type;
    while (j < t.size() &&
           (is_punct(t[j], "&") || is_punct(t[j], "*") || is_ident(t[j], "const"))) {
      ++j;
    }
    if (j >= t.size() || t[j].kind != TokKind::kIdent) return;
    // `Type name` followed by ';', '{', '=', ',' or ')' is a declaration;
    // `Type name(` is a function returning the container — its name is not
    // the container. `Type>::iterator` never reaches here ('::' stops us).
    if (j + 1 < t.size() &&
        (is_punct(t[j + 1], ";") || is_punct(t[j + 1], "{") || is_punct(t[j + 1], "=") ||
         is_punct(t[j + 1], ",") || is_punct(t[j + 1], ")"))) {
      unordered_names.insert(t[j].text);
    }
  }

  void collect_unordered_decls(const SourceFile& f) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (t[i].text.rfind("unordered_", 0) == 0 && i + 1 < t.size() &&
          is_punct(t[i + 1], "<")) {
        const std::size_t end = skip_angles(t, i + 1);
        if (end < t.size() && !is_punct(t[end], "::")) collect_decl_name(t, end);
      } else if (unordered_type_aliases.count(t[i].text) > 0) {
        collect_decl_name(t, i + 1);
      }
    }
  }

  // --- D1: wall clock / entropy -------------------------------------------

  void rule_wall_clock(const SourceFile& f) {
    if (entropy_allowlisted(f.path)) return;
    static const std::set<std::string, std::less<>> kForbidden = {
        "system_clock", "steady_clock",   "high_resolution_clock",
        "random_device", "getenv",        "srand",
        "mt19937",       "mt19937_64",    "default_random_engine"};
    static const std::set<std::string, std::less<>> kCallLike = {"time", "rand"};
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (kForbidden.count(t[i].text) > 0) {
        report(f, t[i].line, "D1", "wall-clock",
               "nondeterministic primitive `" + t[i].text +
                   "` outside common/rng or common/cli; derive values from the "
                   "seeded Rng or the SimClock");
        continue;
      }
      if (kCallLike.count(t[i].text) == 0) continue;
      if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) continue;
      if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
      if (i > 0 && is_punct(t[i - 1], "::")) {
        // Qualified: `std::time(` and global `::time(` are the libc calls;
        // `SomeClass::time(` is a different symbol.
        if (i >= 2 && t[i - 2].kind == TokKind::kIdent && t[i - 2].text != "std") continue;
      }
      report(f, t[i].line, "D1", "wall-clock",
             "call to wall-clock/entropy function `" + t[i].text +
                 "()`; simulations must use SimClock / seeded Rng");
    }
  }

  // --- D2: unordered iteration --------------------------------------------

  void rule_unordered_iter(const SourceFile& f) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i], "for") || !is_punct(t[i + 1], "(")) continue;
      const std::size_t open = i + 1;
      const std::size_t end = skip_balanced(t, open, "(", ")");
      // Split at a ':' on paren depth 1 — a range-for. ('::' is one token,
      // so it cannot masquerade as the range separator.)
      std::size_t colon = end;
      int depth = 0;
      for (std::size_t j = open; j < end; ++j) {
        if (is_punct(t[j], "(")) ++depth;
        else if (is_punct(t[j], ")")) --depth;
        else if (depth == 1 && is_punct(t[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon < end) {
        for (std::size_t j = colon + 1; j < end; ++j) {
          if (t[j].kind == TokKind::kIdent && unordered_names.count(t[j].text) > 0) {
            report(f, t[j].line, "D2", "unordered-iter",
                   "range-for over unordered container `" + t[j].text +
                       "`: iteration order is implementation-defined and leaks "
                       "into traces/metrics/migration order; iterate a sorted "
                       "copy or use std::map");
            break;
          }
        }
      } else {
        // Classic for: flag `name.begin()` / `name->begin()` iterator loops.
        for (std::size_t j = open; j + 2 < end; ++j) {
          if (t[j].kind == TokKind::kIdent && unordered_names.count(t[j].text) > 0 &&
              (is_punct(t[j + 1], ".") || is_punct(t[j + 1], "->")) &&
              (is_ident(t[j + 2], "begin") || is_ident(t[j + 2], "cbegin"))) {
            report(f, t[j].line, "D2", "unordered-iter",
                   "iterator loop over unordered container `" + t[j].text +
                       "`: iteration order is implementation-defined; sort or "
                       "annotate if provably order-insensitive");
            break;
          }
        }
      }
    }
  }

  // --- D3: event-loop callback discipline ---------------------------------

  void rule_event_callbacks(const SourceFile& f) {
    static const std::set<std::string, std::less<>> kSleeps = {
        "sleep_for", "sleep_until", "usleep", "nanosleep"};
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (kSleeps.count(t[i].text) > 0 ||
          (t[i].text == "sleep" && i + 1 < t.size() && is_punct(t[i + 1], "(") &&
           (i == 0 || (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->"))))) {
        report(f, t[i].line, "D3", "event-callback",
               "blocking sleep `" + t[i].text +
                 "`: virtual time only moves via SimClock/EventLoop; real "
                 "sleeps stall the simulation without advancing it");
        continue;
      }
      if ((t[i].text == "schedule_at" || t[i].text == "schedule_after") &&
          i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        const std::size_t end = skip_balanced(t, i + 1, "(", ")");
        for (std::size_t j = i + 2; j < end; ++j) {
          if (is_ident(t[j], "set_now") || is_ident(t[j], "now_")) {
            report(f, t[j].line, "D3", "event-callback",
                   "`" + t[j].text + "` inside a callback passed to " + t[i].text +
                       ": event callbacks must not mutate the clock directly — "
                       "the loop advances it when dispatching");
          }
        }
      }
    }
  }

  // --- P1: non-idempotent handlers must engage the DRC --------------------

  void rule_drc(const SourceFile& f) {
    static const std::set<std::string, std::less<>> kNonIdempotent = {
        "create", "mkdir",  "symlink", "link",     "remove",
        "rmdir",  "rename", "setattr", "set_mode", "truncate"};
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (!is_ident(t[i], "NfsServer") || !is_punct(t[i + 1], "::")) continue;
      if (t[i + 2].kind != TokKind::kIdent || kNonIdempotent.count(t[i + 2].text) == 0) {
        continue;
      }
      if (!is_punct(t[i + 3], "(")) continue;
      std::size_t j = skip_balanced(t, i + 3, "(", ")");
      while (j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // const, noexcept
      if (j >= t.size() || !is_punct(t[j], "{")) continue;       // declaration only
      const std::size_t body_end = skip_balanced(t, j, "{", "}");
      std::size_t first_store = body_end, first_find = body_end, first_record = body_end;
      for (std::size_t k = j; k < body_end; ++k) {
        if (t[k].kind != TokKind::kIdent) continue;
        if (t[k].text == "store_" && first_store == body_end) first_store = k;
        if (t[k].text == "drc_find" && first_find == body_end) first_find = k;
        if (t[k].text == "drc_store" && first_record == body_end) first_record = k;
      }
      const std::string proc = t[i + 2].text;
      if (first_store == body_end) continue;  // no mutation: nothing to protect
      if (first_find > first_store) {
        report(f, t[i].line, "P1", "drc",
               "non-idempotent handler NfsServer::" + proc +
                   " touches store_ before consulting drc_find: a retransmission "
                   "of an executed request would re-execute (at-most-once "
                   "violation)");
      }
      if (first_record == body_end) {
        report(f, t[i].line, "P1", "drc",
               "non-idempotent handler NfsServer::" + proc +
                   " never records its reply via drc_store: the DRC cannot "
                   "answer the retransmission");
      }
    }
  }

  // --- P3: early rejects must precede the DRC store ------------------------
  // Overload control lets a server refuse work before executing it
  // (deadline-expired requests answer kOverloaded). In a non-idempotent
  // handler that refusal MUST happen before the handler records a reply in
  // the duplicate-request cache: a cached kOverloaded would be replayed to
  // the retransmission of a request that never executed, permanently
  // shadowing the real execution (at-most-once becomes at-most-never).

  void rule_early_reject(const SourceFile& f) {
    static const std::set<std::string, std::less<>> kNonIdempotent = {
        "create", "mkdir",  "symlink", "link",     "remove",
        "rmdir",  "rename", "setattr", "set_mode", "truncate"};
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (!is_ident(t[i], "NfsServer") || !is_punct(t[i + 1], "::")) continue;
      if (t[i + 2].kind != TokKind::kIdent || kNonIdempotent.count(t[i + 2].text) == 0) {
        continue;
      }
      if (!is_punct(t[i + 3], "(")) continue;
      std::size_t j = skip_balanced(t, i + 3, "(", ")");
      while (j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // const, noexcept
      if (j >= t.size() || !is_punct(t[j], "{")) continue;       // declaration only
      const std::size_t body_end = skip_balanced(t, j, "{", "}");
      std::size_t first_record = body_end, first_reject = body_end, first_overload = body_end;
      for (std::size_t k = j; k < body_end; ++k) {
        if (t[k].kind != TokKind::kIdent) continue;
        if (t[k].text == "drc_store" && first_record == body_end) first_record = k;
        if (t[k].text == "reject_expired" && first_reject == body_end) first_reject = k;
        if (t[k].text == "kOverloaded" && first_overload == body_end) first_overload = k;
      }
      const std::string proc = t[i + 2].text;
      if (first_record == body_end) continue;  // nothing cached: nothing to poison
      if (first_reject != body_end && first_reject > first_record) {
        report(f, t[first_reject].line, "P3", "early-reject",
               "non-idempotent handler NfsServer::" + proc +
                   " calls reject_expired after drc_store: the shed reply could "
                   "be recorded in the DRC and replayed to a retransmission that "
                   "deserves the real execution");
      }
      if (first_overload != body_end && first_overload > first_record) {
        report(f, t[first_overload].line, "P3", "early-reject",
               "non-idempotent handler NfsServer::" + proc +
                   " produces kOverloaded after drc_store: early-reject paths "
                   "must fire before the reply is cached (a stored overload "
                   "reply shadows the execution forever)");
      }
    }
  }

  // --- P2: full RpcContext construction -----------------------------------

  void rule_rpc_ctx(const SourceFile& f) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i], "RpcContext")) continue;
      if (i > 0 && (is_ident(t[i - 1], "struct") || is_ident(t[i - 1], "class"))) {
        continue;  // the type's own definition
      }
      std::size_t j = i + 1;
      if (j < t.size() && t[j].kind == TokKind::kIdent) {
        if (j + 1 < t.size() && is_punct(t[j + 1], "::")) continue;  // return type
        ++j;
        if (j < t.size() && is_punct(t[j], ";")) {
          report(f, t[j].line, "P2", "rpc-ctx",
                 "default-constructed RpcContext: outbound RPCs must carry the "
                 "full {client, xid, boot} triple (see NfsClient::rpc_ctx)");
          continue;
        }
      }
      if (j < t.size() && is_punct(t[j], "=")) ++j;
      if (j >= t.size() || !is_punct(t[j], "{")) continue;
      const std::size_t end = skip_balanced(t, j, "{", "}");
      int args = 0, depth = 0;
      bool any = false;
      for (std::size_t k = j; k < end; ++k) {
        if (is_punct(t[k], "{") || is_punct(t[k], "(") || is_punct(t[k], "[")) ++depth;
        else if (is_punct(t[k], "}") || is_punct(t[k], ")") || is_punct(t[k], "]")) --depth;
        else if (depth == 1 && is_punct(t[k], ",")) ++args;
        else if (depth >= 1) any = true;
      }
      if (any) ++args;
      if (args >= 3) continue;
      // An empty `{}` that is a defaulted parameter (followed by ')' or ',')
      // is the documented absent-context sentinel for direct server calls.
      if (args == 0 && end < t.size() &&
          (is_punct(t[end], ")") || is_punct(t[end], ","))) {
        continue;
      }
      report(f, t[j].line, "P2", "rpc-ctx",
             "RpcContext constructed with " + std::to_string(args) +
                 " of 3 required fields {client, xid, boot}: partial contexts "
                 "defeat the duplicate-request cache's incarnation check");
    }
  }

  // --- S1: storage backend seam -------------------------------------------

  void rule_storage_seam(const SourceFile& f) {
    if (f.path.rfind("src/fs/", 0) == 0 || f.path.rfind("tests/", 0) == 0) return;
    static const std::set<std::string, std::less<>> kConcrete = {"LocalFs", "CasFs"};
    for (const Token& tok : f.tokens) {
      if (tok.kind != TokKind::kIdent || kConcrete.count(tok.text) == 0) continue;
      report(f, tok.line, "S1", "storage-seam",
             "concrete storage backend `" + tok.text +
                 "` named outside src/fs/ and tests/; program against "
                 "fs::StorageBackend and construct via fs::make_backend");
    }
  }

  // --- H1: header hygiene --------------------------------------------------

  void rule_header(const SourceFile& f) {
    if (!Linter::is_header(f.path)) return;
    const auto& t = f.tokens;
    bool pragma_once = false;
    for (const Token& tok : t) {
      if (tok.kind == TokKind::kDirective &&
          tok.text.find("pragma") != std::string::npos &&
          tok.text.find("once") != std::string::npos) {
        pragma_once = true;
        break;
      }
    }
    if (!pragma_once) {
      report(f, 1, "H1", "header",
             "header is missing `#pragma once` (double inclusion breaks the "
             "one-definition rule)");
    }
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (is_ident(t[i], "using") && is_ident(t[i + 1], "namespace")) {
        report(f, t[i].line, "H1", "header",
               "`using namespace` at header scope pollutes every includer's "
               "namespace");
      }
    }
  }
};

Linter::Linter(Config config) : impl_(new Impl{std::move(config), {}, {}, {}, {}}) {}
Linter::~Linter() { delete impl_; }

void Linter::add_source(std::string path, std::string content) {
  SourceFile f;
  f.path = std::move(path);
  tokenize(content, f);
  impl_->files.push_back(std::move(f));
}

std::size_t Linter::file_count() const { return impl_->files.size(); }

std::vector<Diagnostic> Linter::run() {
  impl_->diags.clear();
  impl_->unordered_names.clear();
  impl_->unordered_type_aliases.clear();
  for (const SourceFile& f : impl_->files) impl_->collect_aliases(f);
  for (const SourceFile& f : impl_->files) impl_->collect_unordered_decls(f);
  for (const SourceFile& f : impl_->files) {
    impl_->rule_wall_clock(f);
    impl_->rule_unordered_iter(f);
    impl_->rule_event_callbacks(f);
    impl_->rule_drc(f);
    impl_->rule_early_reject(f);
    impl_->rule_rpc_ctx(f);
    impl_->rule_storage_seam(f);
    impl_->rule_header(f);
  }
  std::sort(impl_->diags.begin(), impl_->diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return impl_->diags;
}

bool Linter::is_header(const std::string& path) {
  return path.size() >= 4 &&
         (path.compare(path.size() - 4, 4, ".hpp") == 0 ||
          path.compare(path.size() - 2, 2, ".h") == 0);
}

bool Linter::is_cpp_source(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".hpp", ".h"}) {
    const std::size_t len = std::char_traits<char>::length(ext);
    if (path.size() >= len && path.compare(path.size() - len, len, ext) == 0) return true;
  }
  return false;
}

std::string to_text(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << d.file << ':' << d.line << ": error: " << d.message << " [" << d.rule << ']'
        << '\n';
  }
  return out.str();
}

namespace {
void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}
}  // namespace

std::string to_json(const std::vector<Diagnostic>& diags, std::size_t files_scanned) {
  std::ostringstream out;
  out << "{\n  \"violations\": " << diags.size()
      << ",\n  \"files_scanned\": " << files_scanned << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"file\": ";
    json_escape(out, d.file);
    out << ", \"line\": " << d.line << ", \"rule\": ";
    json_escape(out, d.rule);
    out << ", \"slug\": ";
    json_escape(out, d.slug);
    out << ", \"message\": ";
    json_escape(out, d.message);
    out << '}';
  }
  out << (diags.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

int exit_code(const std::vector<Diagnostic>& diags) { return diags.empty() ? 0 : 1; }

}  // namespace kosha::lint

// EventLoop: dispatch ordering, monotonic tie-breaking, timer
// cancellation, and the determinism rules of DESIGN §6 (same-seed runs
// replay byte-identically, no wall-clock anywhere).

#include "common/event_loop.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace kosha {
namespace {

TEST(EventLoop, DispatchesInTimeOrderAndAdvancesClock) {
  SimClock clock;
  EventLoop loop(&clock);
  std::vector<int> order;
  loop.schedule_at(SimDuration::micros(30), [&] { order.push_back(3); });
  loop.schedule_at(SimDuration::micros(10), [&] {
    order.push_back(1);
    EXPECT_EQ(clock.now(), SimDuration::micros(10));
  });
  loop.schedule_at(SimDuration::micros(20), [&] { order.push_back(2); });
  EXPECT_EQ(loop.pending(), 3u);
  EXPECT_EQ(loop.run_until_idle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), SimDuration::micros(30));
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, SameTimeTiesDispatchInScheduleOrder) {
  SimClock clock;
  EventLoop loop(&clock);
  std::string order;
  const SimDuration t = SimDuration::millis(1);
  for (char c : std::string("abcdef")) {
    loop.schedule_at(t, [&order, c] { order.push_back(c); });
  }
  loop.run_until_idle();
  EXPECT_EQ(order, "abcdef");
}

TEST(EventLoop, PastEventsRunAtNowWithoutRewinding) {
  SimClock clock;
  clock.advance(SimDuration::millis(5));
  EventLoop loop(&clock);
  bool ran = false;
  loop.schedule_at(SimDuration::millis(1), [&] {
    ran = true;
    EXPECT_EQ(clock.now(), SimDuration::millis(5));
  });
  loop.run_until_idle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.now(), SimDuration::millis(5));
}

TEST(EventLoop, ScheduleAfterIsRelativeToNow) {
  SimClock clock;
  clock.advance(SimDuration::millis(2));
  EventLoop loop(&clock);
  loop.schedule_after(SimDuration::millis(3), [] {});
  loop.run_until_idle();
  EXPECT_EQ(clock.now(), SimDuration::millis(5));
}

TEST(EventLoop, CancelPreventsDispatchExactlyOnce) {
  SimClock clock;
  EventLoop loop(&clock);
  bool fired = false;
  const EventLoop::EventId timer =
      loop.schedule_after(SimDuration::millis(1), [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(timer));
  EXPECT_FALSE(loop.cancel(timer));  // already cancelled
  EXPECT_EQ(loop.pending(), 0u);
  loop.run_until_idle();
  EXPECT_FALSE(fired);
  // The cancelled event's timestamp never touched the clock.
  EXPECT_EQ(clock.now(), SimDuration{});
  EXPECT_EQ(loop.stats().cancelled, 1u);
  EXPECT_EQ(loop.stats().executed, 0u);
}

TEST(EventLoop, CancelOfAnExecutedEventFails) {
  SimClock clock;
  EventLoop loop(&clock);
  const EventLoop::EventId id = loop.schedule_after(SimDuration::millis(1), [] {});
  loop.run_until_idle();
  EXPECT_FALSE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(EventLoop::kInvalidEvent));
}

TEST(EventLoop, EventsMayScheduleFurtherEvents) {
  SimClock clock;
  EventLoop loop(&clock);
  std::vector<int> order;
  loop.schedule_at(SimDuration::micros(10), [&] {
    order.push_back(1);
    loop.schedule_after(SimDuration::micros(5), [&] { order.push_back(2); });
  });
  loop.schedule_at(SimDuration::micros(20), [&] { order.push_back(3); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), SimDuration::micros(20));
}

TEST(EventLoop, RunUntilStopsAtPredicateLeavingTheRestPending) {
  SimClock clock;
  EventLoop loop(&clock);
  bool done = false;
  int ran = 0;
  loop.schedule_at(SimDuration::micros(1), [&] { ++ran; });
  loop.schedule_at(SimDuration::micros(2), [&] {
    ++ran;
    done = true;
  });
  loop.schedule_at(SimDuration::micros(3), [&] { ++ran; });
  loop.run_until([&] { return done; });
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until_idle();
  EXPECT_EQ(ran, 3);
}

/// The determinism guard: two same-seed loops given the same schedule
/// produce identical dispatch transcripts (including jittered timers);
/// a different seed shifts the jitter stream.
TEST(EventLoop, SameSeedRunsReplayIdentically) {
  const auto transcript = [](std::uint64_t seed) {
    SimClock clock;
    EventLoop loop(&clock, seed);
    std::string out;
    for (int i = 0; i < 16; ++i) {
      const SimDuration base = SimDuration::micros(10 * (i % 4));
      loop.schedule_at(base + loop.jitter(SimDuration::micros(7)), [&out, i] {
        out += std::to_string(i) + ",";
      });
    }
    loop.run_until_idle();
    out += "@" + std::to_string(clock.now().ns);
    return out;
  };
  EXPECT_EQ(transcript(42), transcript(42));
  EXPECT_NE(transcript(42), transcript(43));
}

TEST(EventLoop, RunUntilTimeDispatchesDueEventsAndAdvancesTheClock) {
  SimClock clock;
  EventLoop loop(&clock);
  int ran = 0;
  loop.schedule_at(SimDuration::millis(1), [&] { ++ran; });
  loop.schedule_at(SimDuration::millis(2), [&] { ++ran; });
  loop.schedule_at(SimDuration::millis(9), [&] { ++ran; });

  // Everything <= the horizon runs; the clock lands exactly on the horizon
  // even though a later event is still pending (grid sampling contract).
  EXPECT_EQ(loop.run_until_time(SimDuration::millis(5)), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(clock.now(), SimDuration::millis(5));
  EXPECT_EQ(loop.pending(), 1u);

  // A horizon in the past dispatches nothing and never rewinds the clock.
  EXPECT_EQ(loop.run_until_time(SimDuration::millis(3)), 0u);
  EXPECT_EQ(clock.now(), SimDuration::millis(5));

  EXPECT_EQ(loop.run_until_time(SimDuration::millis(20)), 1u);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(clock.now(), SimDuration::millis(20));
}

TEST(EventLoop, RunUntilTimeRunsEventsScheduledByEventsWithinTheHorizon) {
  SimClock clock;
  EventLoop loop(&clock);
  std::vector<std::int64_t> fired;
  // A self-rescheduling timer (the detector/repair-daemon shape): each
  // firing schedules the next; the horizon bounds the cascade.
  std::function<void()> tick = [&] {
    fired.push_back(clock.now().ns);
    loop.schedule_after(SimDuration::millis(2), tick);
  };
  loop.schedule_at(SimDuration::millis(1), tick);
  loop.run_until_time(SimDuration::millis(8));
  EXPECT_EQ(fired.size(), 4u);  // at 1, 3, 5, 7 ms
  EXPECT_EQ(clock.now(), SimDuration::millis(8));
  EXPECT_EQ(loop.pending(), 1u);  // the 9 ms tick waits for the next call
}

TEST(EventLoop, RunUntilTimeSkipsCancelledHeads) {
  SimClock clock;
  EventLoop loop(&clock);
  int ran = 0;
  const auto a = loop.schedule_at(SimDuration::millis(1), [&] { ++ran; });
  loop.schedule_at(SimDuration::millis(2), [&] { ++ran; });
  ASSERT_TRUE(loop.cancel(a));
  EXPECT_EQ(loop.run_until_time(SimDuration::millis(5)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(clock.now(), SimDuration::millis(5));
}

TEST(SimClockExtensions, AdvanceToAndSetNowRespectPause) {
  SimClock clock;
  clock.advance_to(SimDuration::millis(3));
  EXPECT_EQ(clock.now(), SimDuration::millis(3));
  clock.advance_to(SimDuration::millis(1));  // never backwards
  EXPECT_EQ(clock.now(), SimDuration::millis(3));
  clock.set_now(SimDuration::millis(1));  // explicit rewind is allowed
  EXPECT_EQ(clock.now(), SimDuration::millis(1));
  {
    ClockPauser pause(clock);
    clock.advance_to(SimDuration::millis(9));
    clock.set_now(SimDuration::millis(9));
    EXPECT_EQ(clock.now(), SimDuration::millis(1));
  }
}

}  // namespace
}  // namespace kosha

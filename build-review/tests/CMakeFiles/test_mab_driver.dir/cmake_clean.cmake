file(REMOVE_RECURSE
  "CMakeFiles/test_mab_driver.dir/test_mab_driver.cpp.o"
  "CMakeFiles/test_mab_driver.dir/test_mab_driver.cpp.o.d"
  "test_mab_driver"
  "test_mab_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mab_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

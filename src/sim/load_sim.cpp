#include "sim/load_sim.hpp"

#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "kosha/placement.hpp"
#include "pastry/ring.hpp"

namespace kosha::sim {

LoadDistribution simulate_load_distribution(const trace::FsTrace& trace,
                                            const LoadSimConfig& config) {
  // Hash once per file (keys do not depend on the run's node ids).
  std::vector<pastry::Key> keys(trace.files.size());
  {
    std::unordered_map<std::string, pastry::Key> cache;
    for (std::size_t i = 0; i < trace.files.size(); ++i) {
      if (config.level == 0) {
        keys[i] = key_for_name(trace.files[i].path);  // per-file hashing
      } else {
        const std::string anchor = trace::file_anchor_name(trace.files[i].path, config.level);
        const auto [it, inserted] = cache.try_emplace(anchor, Uint128{});
        if (inserted) it->second = key_for_name(anchor);
        keys[i] = it->second;
      }
    }
  }

  const Rng base(config.seed);
  RunningStats count_mean;
  RunningStats count_std;
  RunningStats bytes_mean;
  RunningStats bytes_std;
  std::mutex merge_mutex;

  parallel_for(
      config.runs,
      [&](std::size_t run) {
        Rng rng = base.fork(run);
        std::vector<std::pair<pastry::NodeId, pastry::Ring::Tag>> ids;
        ids.reserve(config.nodes);
        for (std::size_t n = 0; n < config.nodes; ++n) {
          ids.emplace_back(rng.next_id(), static_cast<pastry::Ring::Tag>(n));
        }
        const pastry::Ring ring(std::move(ids));

        std::vector<std::uint64_t> count(config.nodes, 0);
        std::vector<std::uint64_t> bytes(config.nodes, 0);
        for (std::size_t i = 0; i < trace.files.size(); ++i) {
          const auto node = ring.owner_tag(keys[i]);
          ++count[node];
          bytes[node] += trace.files[i].size;
        }

        RunningStats count_pct;
        RunningStats bytes_pct;
        for (std::size_t n = 0; n < config.nodes; ++n) {
          count_pct.add(100.0 * static_cast<double>(count[n]) /
                        static_cast<double>(trace.files.size()));
          bytes_pct.add(100.0 * static_cast<double>(bytes[n]) /
                        static_cast<double>(trace.total_bytes));
        }

        const std::lock_guard lock(merge_mutex);
        count_mean.add(count_pct.mean());
        count_std.add(count_pct.stddev());
        bytes_mean.add(bytes_pct.mean());
        bytes_std.add(bytes_pct.stddev());
      },
      config.threads);

  return {count_mean.mean(), count_std.mean(), bytes_mean.mean(), bytes_std.mean()};
}

}  // namespace kosha::sim

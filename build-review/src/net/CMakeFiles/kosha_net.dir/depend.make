# Empty dependencies file for kosha_net.
# This may be replaced when dependencies are built.

// Simulator profiler: critical-path attribution on hand-built span DAGs,
// same-seed byte-identical reports, and the profiler's own zero-overhead
// guarantee (a profiling cluster run is numerically identical to a plain one).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/profile.hpp"
#include "common/rng.hpp"
#include "common/tracing.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

SpanRecord make_span(std::uint64_t trace, std::uint64_t id, std::uint64_t parent,
                     const char* name, std::int64_t start, std::int64_t end) {
  SpanRecord s;
  s.trace_id = trace;
  s.span_id = id;
  s.parent_id = parent;
  s.name = name;
  s.start_ns = start;
  s.end_ns = end;
  s.status = "ok";
  return s;
}

TEST(ClassifyStage, MapsSpanNamesToStages) {
  EXPECT_EQ(prof::classify_stage("posix.write"), "client");
  EXPECT_EQ(prof::classify_stage("mount.read_file"), "client");
  EXPECT_EQ(prof::classify_stage("koshad.create"), "koshad");
  EXPECT_EQ(prof::classify_stage("koshad.failover"), "failover");
  EXPECT_EQ(prof::classify_stage("net.queue"), "queue");
  EXPECT_EQ(prof::classify_stage("rpc.timeout"), "rpc_timeout");
  EXPECT_EQ(prof::classify_stage("rpc.backoff"), "rpc_backoff");
  EXPECT_EQ(prof::classify_stage("rpc.CREATE"), "rpc_wire");
  EXPECT_EQ(prof::classify_stage("nfs.CREATE"), "rpc_wire");
  EXPECT_EQ(prof::classify_stage("server.create"), "service");
  EXPECT_EQ(prof::classify_stage("replica.push"), "replica");
  EXPECT_EQ(prof::classify_stage("fd.probe"), "selfheal");
  EXPECT_EQ(prof::classify_stage("repair.tick"), "selfheal");
  EXPECT_EQ(prof::classify_stage("mystery"), "other");
}

// A four-level chain with known attribution:
//
//   posix.write   [0, 1000]
//     koshad.create  [100, 900]
//       rpc.CREATE      [200, 800]
//         net.queue        [200, 300]
//         server.create    [300, 700]
//
// Every nanosecond of the root interval belongs to exactly one span: the
// deepest span covering it on the path that bounded completion.
TEST(CriticalPath, HandBuiltDagHasKnownAttribution) {
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 10, 0, "posix.write", 0, 1000));
  spans.push_back(make_span(1, 11, 10, "koshad.create", 100, 900));
  spans.push_back(make_span(1, 12, 11, "rpc.CREATE", 200, 800));
  spans.push_back(make_span(1, 13, 12, "net.queue", 200, 300));
  spans.push_back(make_span(1, 14, 12, "server.create", 300, 700));

  const prof::CriticalPathReport report = prof::analyze_critical_path(spans);
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_EQ(report.span_count, 5u);
  EXPECT_EQ(report.critical_total_ns, 1000);
  EXPECT_EQ(report.traces[0].root, "posix.write");
  EXPECT_EQ(report.traces[0].total_ns, 1000);

  // Stage totals partition the root interval exactly.
  ASSERT_EQ(report.stages.count("client"), 1u);
  EXPECT_EQ(report.stages.at("client").ns, 200);   // [0,100) + (900,1000]
  EXPECT_EQ(report.stages.at("client").slices, 2u);
  EXPECT_EQ(report.stages.at("koshad").ns, 200);   // [100,200) + (800,900]
  EXPECT_EQ(report.stages.at("rpc_wire").ns, 100); // (700,800]
  EXPECT_EQ(report.stages.at("queue").ns, 100);    // [200,300)
  EXPECT_EQ(report.stages.at("service").ns, 400);  // [300,700]
  std::int64_t sum = 0;
  for (const auto& [name, stage] : report.stages) {
    (void)name;
    sum += stage.ns;
  }
  EXPECT_EQ(sum, report.critical_total_ns);

  // Slices come out in chronological order.
  const auto& slices = report.traces[0].slices;
  ASSERT_EQ(slices.size(), 7u);
  EXPECT_EQ(slices[0].name, "posix.write");
  EXPECT_EQ(slices[1].name, "koshad.create");
  EXPECT_EQ(slices[2].name, "net.queue");
  EXPECT_EQ(slices[3].name, "server.create");
  EXPECT_EQ(slices[4].name, "rpc.CREATE");
  EXPECT_EQ(slices[5].name, "koshad.create");
  EXPECT_EQ(slices[6].name, "posix.write");

  // Flame self times: duration minus union of child intervals.
  EXPECT_EQ(report.flame.at("posix.write").self_ns, 200);
  EXPECT_EQ(report.flame.at("posix.write;koshad.create").self_ns, 200);
  EXPECT_EQ(report.flame.at("posix.write;koshad.create;rpc.CREATE").self_ns, 100);
  EXPECT_EQ(report.flame.at("posix.write;koshad.create;rpc.CREATE;net.queue").self_ns, 100);
  EXPECT_EQ(report.flame.at("posix.write;koshad.create;rpc.CREATE;server.create").self_ns,
            400);
}

// Overlapping children: the later-ending child bounded the parent's
// completion, so the earlier child that overlaps already-attributed time is
// off the critical path entirely (its time still shows up in the flame view).
TEST(CriticalPath, OverlappingChildrenPickTheBoundingOne) {
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(2, 20, 0, "posix.read", 0, 1000));
  spans.push_back(make_span(2, 21, 20, "rpc.READ", 0, 600));    // overlapped: skipped
  spans.push_back(make_span(2, 22, 20, "replica.read", 400, 800));

  const prof::CriticalPathReport report = prof::analyze_critical_path(spans);
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_EQ(report.critical_total_ns, 1000);
  EXPECT_EQ(report.stages.at("client").ns, 600);   // [0,400) + (800,1000]
  EXPECT_EQ(report.stages.at("replica").ns, 400);  // [400,800]
  EXPECT_EQ(report.stages.count("rpc_wire"), 0u);
  // The skipped child still contributes flame self time.
  EXPECT_EQ(report.flame.at("posix.read;rpc.READ").self_ns, 600);
}

TEST(CriticalPath, OrphansAnchorTheirOwnTree) {
  // A span whose parent is missing from the stream (partial capture) is
  // treated as a root so analysis still covers it.
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(3, 31, 999, "server.write", 50, 250));
  const prof::CriticalPathReport report = prof::analyze_critical_path(spans);
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_EQ(report.traces[0].total_ns, 200);
  EXPECT_EQ(report.stages.at("service").ns, 200);
}

TEST(Tracer, EmitSpanRecordsFinishedIntervalWithoutTouchingStack) {
  SimClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);

  const TraceContext root = tracer.begin_span("posix.write", 0);
  const TraceContext emitted = tracer.emit_span(root, "rpc.backoff", 0,
                                                SimDuration::micros(10),
                                                SimDuration::micros(30));
  EXPECT_TRUE(emitted.valid());
  EXPECT_EQ(emitted.trace_id, root.trace_id);
  EXPECT_EQ(tracer.open_depth(), 1u);  // stack untouched
  tracer.end_span();

  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& backoff = tracer.spans()[0];  // finished first
  EXPECT_EQ(backoff.name, "rpc.backoff");
  EXPECT_EQ(backoff.parent_id, root.span_id);
  EXPECT_EQ(backoff.start_ns, SimDuration::micros(10).ns);
  EXPECT_EQ(backoff.end_ns, SimDuration::micros(30).ns);

  // Disabled tracer: emit_span is inert and returns an invalid context.
  tracer.set_enabled(false);
  EXPECT_FALSE(tracer.emit_span(root, "rpc.timeout", 0, SimDuration::micros(1),
                                SimDuration::micros(2))
                   .valid());
  EXPECT_EQ(tracer.spans().size(), 2u);
}

/// Same mixed workload as test_metrics: deterministic given the cluster seed.
SimDuration run_workload(KoshaCluster& cluster) {
  KoshaMount mount(&cluster.daemon(0));
  Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    const std::string dir = "/d" + std::to_string(rng.next_below(4));
    const std::string file = dir + "/f" + std::to_string(i);
    EXPECT_TRUE(mount.mkdir_p(dir).ok());
    EXPECT_TRUE(mount.write_file(file, rng.next_name(24)).ok());
    EXPECT_TRUE(mount.read_file(file).ok());
    EXPECT_TRUE(mount.stat(file).ok());
  }
  return cluster.clock().now();
}

TEST(Profiler, EnabledProfilerIsNumericallyInvisible) {
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.replicas = 2;
  config.seed = 11;
  KoshaCluster plain(config);

  config.observability.metrics = true;
  config.observability.tracing = true;
  config.observability.profiling = true;
  KoshaCluster profiled(config);

  // Wall-clock measurement flows out of the simulation, never in: the
  // profiled run lands on the same virtual end time and network accounting.
  EXPECT_EQ(run_workload(plain), run_workload(profiled));
  EXPECT_EQ(plain.network().stats(), profiled.network().stats());

  // ...and the profiler actually saw the run.
  const SimProfiler& prof = profiled.profiler();
  EXPECT_GT(prof.events(), 0u);
  // note_op() fires per completed client NFS RPC; every mount call issues at
  // least one, so 32 iterations x 4 mount ops is a floor.
  EXPECT_GE(prof.ops(), 32u * 4u);
  EXPECT_GT(prof.categories().count("rpc.execute"), 0u);
  EXPECT_GT(prof.categories().count("rpc.arrive"), 0u);
  EXPECT_GT(prof.hosts().size(), 0u);

  // The disabled cluster recorded nothing.
  EXPECT_EQ(plain.profiler().events(), 0u);
  EXPECT_EQ(plain.profiler().ops(), 0u);
}

TEST(Profiler, ExportPublishesGaugesThroughTheRegistry) {
  ClusterConfig config;
  config.nodes = 4;
  config.seed = 5;
  config.observability.metrics = true;
  config.observability.profiling = true;
  KoshaCluster cluster(config);
  (void)run_workload(cluster);

  const auto parsed = parse_json(cluster.export_metrics_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const JsonValue* gauges = parsed.value().find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_GT(gauges->number_or("prof.events", 0), 0.0);
  EXPECT_GE(gauges->number_or("prof.ops", 0), 128.0);
  EXPECT_GT(gauges->number_or("prof.virtual_ms", 0), 0.0);
  EXPECT_GT(gauges->number_or("prof.host.busy_total_ms", -1), 0.0);
  // 4 hosts <= kPerHostGaugeLimit: per-host gauges present.
  ASSERT_NE(gauges->find("prof.host.0.busy_ms"), nullptr);
  EXPECT_GT(gauges->number_or("prof.cat.rpc.execute.count", 0), 0.0);
}

TEST(Profiler, SameSeedCriticalPathReportIsByteIdentical) {
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.replicas = 2;
  config.seed = 23;
  config.observability.tracing = true;
  config.observability.profiling = true;

  KoshaCluster a(config);
  KoshaCluster b(config);
  (void)run_workload(a);
  (void)run_workload(b);

  const prof::CriticalPathReport ra = prof::analyze_critical_path(a.tracer().spans());
  const prof::CriticalPathReport rb = prof::analyze_critical_path(b.tracer().spans());
  ASSERT_GT(ra.traces.size(), 0u);
  EXPECT_GT(ra.critical_total_ns, 0);
  // Both human-readable and JSON renderings are byte-identical: the whole
  // pipeline (spans -> DAG -> attribution -> formatting) is wall-clock free.
  EXPECT_EQ(prof::render_critical_report(ra), prof::render_critical_report(rb));
  EXPECT_EQ(prof::critical_report_json(ra), prof::critical_report_json(rb));
  EXPECT_EQ(a.tracer().to_jsonl(), b.tracer().to_jsonl());
}

TEST(Profiler, WorkloadSpansCoverQueueAndServiceStages) {
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.replicas = 2;
  config.seed = 23;
  config.observability.tracing = true;
  KoshaCluster cluster(config);
  (void)run_workload(cluster);

  const prof::CriticalPathReport report =
      prof::analyze_critical_path(cluster.tracer().spans());
  // The real span stream exercises the taxonomy: interposition, wire and
  // server-execution time all appear on the critical path. (Mount-layer
  // spans begin and end at the same virtual instants as their koshad
  // children, so "client" self time is legitimately zero.)
  EXPECT_GT(report.stages.count("koshad"), 0u);
  EXPECT_GT(report.stages.count("rpc_wire"), 0u);
  EXPECT_GT(report.stages.count("service"), 0u);
  // Per-trace totals are consistent with the slice partition.
  for (const auto& trace : report.traces) {
    std::int64_t sum = 0;
    for (const auto& slice : trace.slices) sum += slice.ns;
    EXPECT_EQ(sum, trace.total_ns) << "trace " << trace.trace_id;
  }
}

TEST(SimProfiler, ResetClearsCountsAndCategories) {
  SimProfiler prof;
  prof.record_event("rpc.arrive", 100);
  prof.record_event(nullptr, 50);  // falls back to the default category
  prof.add_host_busy(3, SimDuration::micros(7));
  prof.note_op();
  EXPECT_EQ(prof.events(), 2u);
  EXPECT_EQ(prof.event_wall_ns(), 150u);
  EXPECT_EQ(prof.ops(), 1u);
  EXPECT_EQ(prof.categories().at("rpc.arrive").count, 1u);
  EXPECT_EQ(prof.categories().at("event").count, 1u);
  prof.reset();
  EXPECT_EQ(prof.events(), 0u);
  EXPECT_EQ(prof.ops(), 0u);
  EXPECT_TRUE(prof.categories().empty());
  EXPECT_TRUE(prof.hosts().empty());
}

}  // namespace
}  // namespace kosha

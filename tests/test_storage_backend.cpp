// Storage backend seam: the flat and content-addressed stores must be
// observably identical through the StorageBackend interface (same op
// results, same attributes, same accounting), while the CAS backend alone
// dedups physical bytes, detects corrupted blocks on read, and feeds the
// self-healing ladder: a corrupt replica block is repaired by the
// anti-entropy scrub, a corrupt primary read degrades to a replica copy.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "fs/storage_backend.hpp"
#include "kosha/audit.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "nfs/nfs_server.hpp"

namespace kosha::fs {
namespace {

StorageConfig config_of(BackendKind backend, std::uint64_t chunk_bytes = 8) {
  StorageConfig config;
  config.backend = backend;
  config.chunk_bytes = chunk_bytes;
  return config;
}

// ---------------------------------------------------------------------------
// Parity: the test_local_fs_model operation stream applied to both backends
// side by side; every operation must report the same status and every
// checkpoint must show the same observable tree.
// ---------------------------------------------------------------------------

/// Deep-compare the two stores' trees: entry names/types, file content,
/// symlink targets, and the attribute fields NFS exposes.
void expect_same_tree(StorageBackend& a, StorageBackend& b, InodeId dir_a, InodeId dir_b,
                      const std::string& where) {
  const auto ea = a.readdir(dir_a);
  const auto eb = b.readdir(dir_b);
  ASSERT_EQ(ea.ok(), eb.ok()) << where;
  if (!ea.ok()) return;
  ASSERT_EQ(ea->size(), eb->size()) << where;
  for (std::size_t i = 0; i < ea->size(); ++i) {
    const DirEntry& da = ea.value()[i];
    const DirEntry& db = eb.value()[i];
    const std::string path = where + "/" + da.name;
    ASSERT_EQ(da.name, db.name) << path;
    ASSERT_EQ(da.type, db.type) << path;
    const auto aa = a.getattr(da.inode);
    const auto ab = b.getattr(db.inode);
    ASSERT_TRUE(aa.ok() && ab.ok()) << path;
    EXPECT_EQ(aa->size, ab->size) << path;
    EXPECT_EQ(aa->mode, ab->mode) << path;
    EXPECT_EQ(aa->uid, ab->uid) << path;
    EXPECT_EQ(aa->gid, ab->gid) << path;
    EXPECT_EQ(aa->mtime, ab->mtime) << path;
    if (da.type == FileType::kFile) {
      const auto ca = a.read(da.inode, 0, 1 << 20);
      const auto cb = b.read(db.inode, 0, 1 << 20);
      ASSERT_TRUE(ca.ok() && cb.ok()) << path;
      EXPECT_EQ(ca.value(), cb.value()) << path;
    } else if (da.type == FileType::kSymlink) {
      EXPECT_EQ(a.readlink(da.inode).value(), b.readlink(db.inode).value()) << path;
    } else {
      expect_same_tree(a, b, da.inode, db.inode, path);
    }
  }
}

class StorageParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageParity, RandomOperationStreamsAgreeAcrossBackends) {
  const auto flat = make_backend(config_of(BackendKind::kFlat));
  const auto cas = make_backend(config_of(BackendKind::kCas, /*chunk_bytes=*/8));
  Rng rng(GetParam());

  std::vector<std::vector<std::string>> dirs{{}};
  auto resolve_dir = [](StorageBackend& fs, const std::vector<std::string>& parts) {
    InodeId cur = fs.root();
    for (const auto& p : parts) {
      const auto next = fs.lookup(cur, p);
      if (!next.ok()) return kInvalidInode;
      cur = next.value();
    }
    return cur;
  };

  for (int op = 0; op < 600; ++op) {
    const auto& parts = dirs[rng.next_below(dirs.size())];
    const InodeId fdir = resolve_dir(*flat, parts);
    const InodeId cdir = resolve_dir(*cas, parts);
    ASSERT_EQ(fdir == kInvalidInode, cdir == kInvalidInode);
    if (fdir == kInvalidInode) continue;
    if (flat->getattr(fdir)->type != FileType::kDirectory) continue;
    const std::string name = "n" + std::to_string(rng.next_below(5));
    const unsigned action = static_cast<unsigned>(rng.next_below(8));

    switch (action) {
      case 0: {
        const auto a = flat->create(fdir, name, 0640, 3, 5);
        const auto b = cas->create(cdir, name, 0640, 3, 5);
        ASSERT_EQ(a.ok(), b.ok()) << name;
        break;
      }
      case 1: {
        const auto a = flat->mkdir(fdir, name);
        const auto b = cas->mkdir(cdir, name);
        ASSERT_EQ(a.ok(), b.ok()) << name;
        if (a.ok()) {
          auto path = parts;
          path.push_back(name);
          dirs.push_back(std::move(path));
        }
        break;
      }
      case 2: {
        const auto a = flat->symlink(fdir, name, "target" + name);
        const auto b = cas->symlink(cdir, name, "target" + name);
        ASSERT_EQ(a.ok(), b.ok()) << name;
        break;
      }
      case 3: {  // write
        const auto fi = flat->lookup(fdir, name);
        const auto ci = cas->lookup(cdir, name);
        ASSERT_EQ(fi.ok(), ci.ok()) << name;
        if (!fi.ok() || flat->getattr(*fi)->type != FileType::kFile) break;
        const std::uint64_t offset = rng.next_below(20);
        const std::string data = rng.next_name(1 + rng.next_below(30));
        const auto a = flat->write(*fi, offset, data);
        const auto b = cas->write(*ci, offset, data);
        ASSERT_EQ(a.ok(), b.ok()) << name;
        if (a.ok()) EXPECT_EQ(a.value(), b.value());
        break;
      }
      case 4: {  // truncate
        const auto fi = flat->lookup(fdir, name);
        const auto ci = cas->lookup(cdir, name);
        ASSERT_EQ(fi.ok(), ci.ok()) << name;
        if (!fi.ok() || flat->getattr(*fi)->type != FileType::kFile) break;
        const std::uint64_t size = rng.next_below(40);
        ASSERT_EQ(flat->truncate(*fi, size).ok(), cas->truncate(*ci, size).ok());
        break;
      }
      case 5: {
        ASSERT_EQ(flat->remove(fdir, name).ok(), cas->remove(cdir, name).ok()) << name;
        break;
      }
      case 6: {
        ASSERT_EQ(flat->rmdir(fdir, name).ok(), cas->rmdir(cdir, name).ok()) << name;
        break;
      }
      case 7: {
        const std::string to = "n" + std::to_string(rng.next_below(5));
        ASSERT_EQ(flat->rename(fdir, name, fdir, to).ok(),
                  cas->rename(cdir, name, cdir, to).ok())
            << name << "->" << to;
        break;
      }
      default:
        break;
    }

    if (op % 100 == 99) {
      expect_same_tree(*flat, *cas, flat->root(), cas->root(), "");
      if (::testing::Test::HasFatalFailure()) return;
      ASSERT_EQ(flat->used_bytes(), cas->used_bytes());
    }
  }
  expect_same_tree(*flat, *cas, flat->root(), cas->root(), "");
  EXPECT_EQ(flat->used_bytes(), cas->used_bytes());
  // Logical accounting agrees; only the physical footprint may differ.
  EXPECT_EQ(cas->stats().verify_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageParity,
                         ::testing::Values(1, 7, 42, 99, 12345, 777, 31337));

// ---------------------------------------------------------------------------
// Interface basics shared by both backends.
// ---------------------------------------------------------------------------

class StorageBackendOps : public ::testing::TestWithParam<BackendKind> {};

TEST_P(StorageBackendOps, CreateCarriesOwnership) {
  const auto store = make_backend(config_of(GetParam()));
  const auto file = store->create(store->root(), "f", 0600, 17, 23);
  ASSERT_TRUE(file.ok());
  const auto attr = store->getattr(file.value());
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mode, 0600u);
  EXPECT_EQ(attr->uid, 17u);
  EXPECT_EQ(attr->gid, 23u);

  const auto dir = store->mkdir(store->root(), "d", 0700, 4, 9);
  ASSERT_TRUE(dir.ok());
  const auto dattr = store->getattr(dir.value());
  ASSERT_TRUE(dattr.ok());
  EXPECT_EQ(dattr->uid, 4u);
  EXPECT_EQ(dattr->gid, 9u);
}

TEST_P(StorageBackendOps, CapacityIsLogicalBytes) {
  StorageConfig config = config_of(GetParam());
  config.fs.capacity_bytes = 100;
  const auto store = make_backend(config);
  const auto file = store->create(store->root(), "f");
  ASSERT_TRUE(file.ok());
  const std::string payload(60, 'x');
  ASSERT_TRUE(store->write(*file, 0, payload).ok());
  // A second identical file dedups physically on cas, but the capacity
  // model stays logical: the write must hit kNoSpace on both backends.
  const auto twin = store->create(store->root(), "g");
  ASSERT_TRUE(twin.ok());
  const auto result = store->write(*twin, 0, payload);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), FsStatus::kNoSpace);
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageBackendOps,
                         ::testing::Values(BackendKind::kFlat, BackendKind::kCas),
                         [](const auto& info) { return std::string(to_string(info.param)); });

// ---------------------------------------------------------------------------
// CAS-specific behaviour: dedup accounting, block refcounts, verified reads.
// ---------------------------------------------------------------------------

TEST(CasFs, IdenticalContentDedups) {
  const auto store = make_backend(config_of(BackendKind::kCas, 16));
  const std::string payload(64, 'a');  // 4 blocks, all distinct? no: all 'a'
  const auto f1 = store->create(store->root(), "f1");
  const auto f2 = store->create(store->root(), "f2");
  ASSERT_TRUE(store->write(*f1, 0, payload).ok());
  ASSERT_TRUE(store->write(*f2, 0, payload).ok());
  // 64 identical bytes chunked at 16 → a single distinct block, shared by
  // all 8 manifest slots across both files.
  EXPECT_EQ(store->used_bytes(), 128u);
  EXPECT_EQ(store->stats().blocks_live, 1u);
  EXPECT_EQ(store->stats().dedup_bytes, 128u - 16u);
  ASSERT_EQ(store->file_blocks(*f1).size(), 4u);
  EXPECT_EQ(store->file_blocks(*f1)[0].id, store->file_blocks(*f2)[3].id);
}

TEST(CasFs, RefcountsReleaseBlocksWithTheLastFile) {
  const auto store = make_backend(config_of(BackendKind::kCas, 8));
  const std::string payload = "0123456789abcdef";  // 2 distinct blocks
  const auto f1 = store->create(store->root(), "f1");
  const auto f2 = store->create(store->root(), "f2");
  ASSERT_TRUE(store->write(*f1, 0, payload).ok());
  ASSERT_TRUE(store->write(*f2, 0, payload).ok());
  EXPECT_EQ(store->stats().blocks_live, 2u);
  ASSERT_TRUE(store->remove(store->root(), "f1").ok());
  EXPECT_EQ(store->stats().blocks_live, 2u);  // still referenced by f2
  ASSERT_TRUE(store->remove(store->root(), "f2").ok());
  EXPECT_EQ(store->stats().blocks_live, 0u);
  EXPECT_EQ(store->used_bytes(), 0u);
  EXPECT_EQ(store->stats().dedup_bytes, 0u);
}

TEST(CasFs, TruncateAndOverwriteDropUnreferencedBlocks) {
  const auto store = make_backend(config_of(BackendKind::kCas, 4));
  const auto file = store->create(store->root(), "f");
  ASSERT_TRUE(store->write(*file, 0, "AAAABBBBCCCC").ok());
  EXPECT_EQ(store->stats().blocks_live, 3u);
  ASSERT_TRUE(store->truncate(*file, 4).ok());
  EXPECT_EQ(store->stats().blocks_live, 1u);
  ASSERT_TRUE(store->truncate(*file, 0).ok());
  EXPECT_EQ(store->stats().blocks_live, 0u);
  EXPECT_EQ(store->used_bytes(), 0u);
}

TEST(CasFs, VerifiedReadDetectsCorruptBlock) {
  const auto store = make_backend(config_of(BackendKind::kCas, 4));
  const auto file = store->create(store->root(), "f");
  ASSERT_TRUE(store->write(*file, 0, "AAAABBBBCCCC").ok());
  ASSERT_TRUE(store->corrupt_file_block(*file, 1));

  // Reads that miss the corrupt chunk still verify clean.
  EXPECT_EQ(store->read(*file, 0, 4).value(), "AAAA");
  // Reads touching it fail with kCorrupt and bump the failure gauge.
  const auto bad = store->read(*file, 0, 12);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), FsStatus::kCorrupt);
  EXPECT_EQ(store->stats().verify_failures, 1u);
  // The sweep probe counts exactly the one damaged chunk ...
  EXPECT_EQ(store->verify_subtree("/"), 1u);
  // ... and the damaged block no longer counts as held for delta
  // transfers, so a re-push will ship (and heal) it.
  EXPECT_FALSE(store->has_block(store->file_blocks(*file)[1].id));

  // Rewriting the same content heals the block in place.
  ASSERT_TRUE(store->write(*file, 4, "BBBB").ok());
  EXPECT_EQ(store->read(*file, 0, 12).value(), "AAAABBBBCCCC");
  EXPECT_EQ(store->verify_subtree("/"), 0u);
}

TEST(CasFs, UnverifiedReadsServeCorruptBytes) {
  StorageConfig config = config_of(BackendKind::kCas, 4);
  config.verify_reads = false;
  const auto store = make_backend(config);
  const auto file = store->create(store->root(), "f");
  ASSERT_TRUE(store->write(*file, 0, "AAAABBBB").ok());
  ASSERT_TRUE(store->corrupt_file_block(*file, 0));
  const auto data = store->read(*file, 0, 8);
  ASSERT_TRUE(data.ok());  // verification off: garbage flows through
  EXPECT_NE(data.value(), "AAAABBBB");
  EXPECT_EQ(store->stats().verify_failures, 0u);
  // The offline sweep still notices.
  EXPECT_EQ(store->verify_subtree("/"), 1u);
}

TEST(CasFs, PurgeResetsBlockStore) {
  const auto store = make_backend(config_of(BackendKind::kCas, 8));
  const auto file = store->create(store->root(), "f");
  ASSERT_TRUE(store->write(*file, 0, "some content here").ok());
  ASSERT_GT(store->stats().blocks_live, 0u);
  store->purge();
  EXPECT_EQ(store->stats().blocks_live, 0u);
  EXPECT_EQ(store->stats().dedup_bytes, 0u);
  EXPECT_EQ(store->used_bytes(), 0u);
}

TEST(FlatFs, BlockHooksAreInert) {
  const auto store = make_backend(config_of(BackendKind::kFlat));
  const auto file = store->create(store->root(), "f");
  ASSERT_TRUE(store->write(*file, 0, "payload").ok());
  EXPECT_EQ(store->kind(), BackendKind::kFlat);
  EXPECT_TRUE(store->file_blocks(*file).empty());
  EXPECT_FALSE(store->corrupt_file_block(*file, 0));
  EXPECT_EQ(store->verify_subtree("/"), 0u);
  EXPECT_EQ(store->stats().dedup_bytes, 0u);
  EXPECT_EQ(store->stats().blocks_live, 0u);
}

// ---------------------------------------------------------------------------
// Fault plan: corruption healed through the replica machinery.
// ---------------------------------------------------------------------------

std::string find_path(const StorageBackend& store, InodeId dir, const std::string& prefix,
                      const std::string& content) {
  const auto entries = store.readdir(dir);
  if (!entries.ok()) return {};
  for (const auto& entry : entries.value()) {
    const std::string path = prefix + "/" + entry.name;
    if (entry.type == FileType::kDirectory) {
      if (auto found = find_path(store, entry.inode, path, content); !found.empty()) {
        return found;
      }
    } else if (entry.type == FileType::kFile) {
      const auto data = store.read(entry.inode, 0, 1 << 20);
      if (data.ok() && data.value() == content) return path;
    }
  }
  return {};
}

/// Flip one stored block of the copy of `content` on `host`; returns false
/// if no copy lives there.
bool corrupt_copy(KoshaCluster& cluster, net::HostId host, const std::string& content) {
  StorageBackend& store = cluster.server(host).store();
  const std::string path = find_path(store, store.root(), "", content);
  if (path.empty()) return false;
  const auto inode = store.resolve(path);
  if (!inode.ok()) return false;
  return store.corrupt_file_block(inode.value(), 0);
}

ClusterConfig cas_cluster_config(std::uint64_t seed) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.kosha.distribution_level = 2;
  config.kosha.storage.backend = BackendKind::kCas;
  config.kosha.storage.chunk_bytes = 8;
  config.seed = seed;
  return config;
}

TEST(CasCluster, ScrubRepairsCorruptReplicaBlock) {
  ClusterConfig config = cas_cluster_config(81);
  config.self_heal.enabled = true;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/sb/a").ok());
  const std::string content = "corrupt-scrub-81-padding-to-span-blocks";
  ASSERT_TRUE(mount.write_file("/sb/a/f", content).ok());

  const auto vh = mount.resolve("/sb/a/f");
  ASSERT_TRUE(vh.ok());
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  // Damage one block of a *replica* copy (out-of-band bit rot: no RPC, no
  // replica bookkeeping).
  net::HostId victim = net::kInvalidHost;
  for (const net::HostId host : cluster.live_hosts()) {
    if (host != primary && corrupt_copy(cluster, host, content)) {
      victim = host;
      break;
    }
  }
  ASSERT_NE(victim, net::kInvalidHost);
  const StorageBackend& damaged = cluster.server(victim).store();
  ASSERT_GT(damaged.verify_subtree("/"), 0u);

  // No membership change happens — only the integrity probe of the
  // anti-entropy audit can notice the rot and re-push the anchor.
  cluster.loop().run_until_time(cluster.clock().now() + SimDuration::seconds(3));
  EXPECT_EQ(damaged.verify_subtree("/"), 0u);
  const auto audit = audit_cluster(cluster);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(CasCluster, CorruptPrimaryReadDegradesToReplica) {
  ClusterConfig config = cas_cluster_config(42);
  config.kosha.read_from_replicas = true;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/sb/b").ok());
  const std::string content = "degraded-read-42-padding-to-span-blocks";
  ASSERT_TRUE(mount.write_file("/sb/b/f", content).ok());

  const auto vh = mount.resolve("/sb/b/f");
  ASSERT_TRUE(vh.ok());
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  ASSERT_TRUE(corrupt_copy(cluster, primary, content));

  // Every read must still return the true bytes: whichever round-robin
  // turn hits the primary sees kCorrupt from the hash check and degrades
  // to a replica copy instead of surfacing the error.
  for (int i = 0; i < 8; ++i) {
    const auto data = mount.read_file("/sb/b/f");
    ASSERT_TRUE(data.ok()) << "read " << i;
    EXPECT_EQ(data.value(), content) << "read " << i;
  }
  EXPECT_GT(cluster.server(primary).store().stats().verify_failures, 0u);
}

}  // namespace
}  // namespace kosha::fs

# Empty dependencies file for kosha_common.
# This may be replaced when dependencies are built.

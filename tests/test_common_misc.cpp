// Tests for the remaining common utilities: thread pool / parallel_for,
// CLI parsing, table rendering, and the virtual clock.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/cli.hpp"
#include "common/sim_clock.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace kosha {
namespace {

// --- parallel_for / ThreadPool ---------------------------------------------

TEST(ParallelFor, EveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, SingleThreadFallback) {
  int sum = 0;  // no atomics needed: single thread
  parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  EXPECT_EQ(pool.thread_count(), 2u);
}

// --- CliArgs ----------------------------------------------------------------

std::vector<char*> make_argv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(CliArgs, SpaceAndEqualsForms) {
  std::vector<std::string> storage{"prog", "--runs", "7", "--seed=42", "--verbose"};
  auto argv = make_argv(storage);
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("runs", 0), 7);
  EXPECT_EQ(args.get_int("seed", 0), 42);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("missing", 5), 5);
  EXPECT_EQ(args.get_string("name", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.5), 0.5);
}

TEST(CliArgs, UnknownFlagDetection) {
  std::vector<std::string> storage{"prog", "--runs", "7", "--oops", "1"};
  auto argv = make_argv(storage);
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(args.check_known("runs,seed").find("oops") != std::string::npos);
  EXPECT_TRUE(args.check_known("runs,oops").empty());
}

TEST(CliArgs, RejectsPositionalArguments) {
  std::vector<std::string> storage{"prog", "positional"};
  auto argv = make_argv(storage);
  EXPECT_THROW(CliArgs(static_cast<int>(argv.size()), argv.data()), std::invalid_argument);
}

// --- TextTable ---------------------------------------------------------------

TEST(TextTable, AlignsColumnsAndCsv) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_EQ(table.to_csv(), "name,value\na,1\nlonger,22\n");
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.to_csv(), "a,b,c\nonly,,\n");
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.0563, 1), "5.6%");
}

// --- SimClock ----------------------------------------------------------------

TEST(SimClock, AdvanceAccumulates) {
  SimClock clock;
  clock.advance(SimDuration::millis(1.5));
  clock.advance(SimDuration::micros(500));
  EXPECT_DOUBLE_EQ(clock.now().to_millis(), 2.0);
}

TEST(SimClock, PauserSuppressesAdvances) {
  SimClock clock;
  clock.advance(SimDuration::seconds(1));
  {
    ClockPauser pause(clock);
    clock.advance(SimDuration::seconds(100));
    EXPECT_TRUE(clock.paused());
    {
      ClockPauser nested(clock);
      clock.advance(SimDuration::seconds(100));
    }
    clock.advance(SimDuration::seconds(100));
  }
  EXPECT_FALSE(clock.paused());
  clock.advance(SimDuration::seconds(1));
  EXPECT_DOUBLE_EQ(clock.now().to_seconds(), 2.0);
}

TEST(SimClock, StopwatchMeasuresWindow) {
  SimClock clock;
  clock.advance(SimDuration::seconds(5));
  const SimStopwatch watch(clock);
  clock.advance(SimDuration::seconds(3));
  EXPECT_DOUBLE_EQ(watch.elapsed().to_seconds(), 3.0);
}

TEST(SimDuration, ConversionsAndArithmetic) {
  EXPECT_EQ(SimDuration::seconds(2).ns, 2'000'000'000);
  EXPECT_EQ((SimDuration::millis(1) + SimDuration::micros(500)).ns, 1'500'000);
  EXPECT_EQ((SimDuration::millis(2) - SimDuration::millis(1)).ns, 1'000'000);
  EXPECT_EQ((SimDuration::micros(10) * 3).ns, 30'000);
  EXPECT_LT(SimDuration::micros(1), SimDuration::millis(1));
}

}  // namespace
}  // namespace kosha

file(REMOVE_RECURSE
  "CMakeFiles/kosha_sim.dir/availability_sim.cpp.o"
  "CMakeFiles/kosha_sim.dir/availability_sim.cpp.o.d"
  "CMakeFiles/kosha_sim.dir/concurrency_driver.cpp.o"
  "CMakeFiles/kosha_sim.dir/concurrency_driver.cpp.o.d"
  "CMakeFiles/kosha_sim.dir/insertion_sim.cpp.o"
  "CMakeFiles/kosha_sim.dir/insertion_sim.cpp.o.d"
  "CMakeFiles/kosha_sim.dir/load_sim.cpp.o"
  "CMakeFiles/kosha_sim.dir/load_sim.cpp.o.d"
  "libkosha_sim.a"
  "libkosha_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "fs/local_fs.hpp"

#include <algorithm>

#include "common/path.hpp"

namespace kosha::fs {

LocalFs::LocalFs(FsConfig config) : config_(config) {
  Inode root;
  root.allocated = true;
  root.type = FileType::kDirectory;
  root.mode = 0755;
  root.generation = 1;
  inodes_.push_back(std::move(root));
  live_inodes_ = 1;
}

const LocalFs::Inode* LocalFs::get(InodeId id) const {
  if (id == kInvalidInode || id > inodes_.size()) return nullptr;
  const Inode& node = inodes_[id - 1];
  return node.allocated ? &node : nullptr;
}

LocalFs::Inode* LocalFs::get(InodeId id) {
  return const_cast<Inode*>(static_cast<const LocalFs*>(this)->get(id));
}

InodeId LocalFs::allocate(FileType type, std::uint32_t mode, std::uint32_t uid,
                          std::uint32_t gid) {
  InodeId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    inodes_.emplace_back();
    id = inodes_.size();
  }
  Inode& node = inodes_[id - 1];
  const std::uint64_t generation = node.generation + 1;
  node = Inode{};
  node.allocated = true;
  node.type = type;
  node.mode = mode;
  node.uid = uid;
  node.gid = gid;
  node.generation = generation;
  node.mtime = ++mtime_counter_;
  ++live_inodes_;
  return id;
}

void LocalFs::release(InodeId id) {
  Inode& node = inodes_[id - 1];
  used_bytes_ -= node.type == FileType::kFile ? node.data.size() : 0;
  const std::uint64_t generation = node.generation;
  node = Inode{};
  node.generation = generation;  // preserved so stale handles stay stale
  free_list_.push_back(id);
  --live_inodes_;
}

bool LocalFs::valid_name(std::string_view name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string_view::npos;
}

bool LocalFs::would_exceed(std::uint64_t extra) const {
  const double limit =
      static_cast<double>(config_.capacity_bytes) * config_.utilization_threshold;
  return static_cast<double>(used_bytes_ + extra) > limit;
}

FsResult<InodeId> LocalFs::lookup(InodeId dir, std::string_view name) const {
  const Inode* d = get(dir);
  if (d == nullptr) return FsStatus::kStale;
  if (d->type != FileType::kDirectory) return FsStatus::kNotDir;
  const auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return FsStatus::kNoEnt;
  return it->second;
}

FsResult<InodeId> LocalFs::create(InodeId dir, std::string_view name, std::uint32_t mode,
                                  std::uint32_t uid, std::uint32_t gid) {
  Inode* d = get(dir);
  if (d == nullptr) return FsStatus::kStale;
  if (d->type != FileType::kDirectory) return FsStatus::kNotDir;
  if (!valid_name(name)) return FsStatus::kInval;
  if (d->entries.count(std::string(name)) != 0) return FsStatus::kExist;
  const InodeId id = allocate(FileType::kFile, mode, uid, gid);
  d = get(dir);  // allocate() may have reallocated the inode table
  d->entries.emplace(std::string(name), id);
  d->mtime = ++mtime_counter_;
  return id;
}

FsResult<InodeId> LocalFs::mkdir(InodeId dir, std::string_view name, std::uint32_t mode,
                                 std::uint32_t uid, std::uint32_t gid) {
  Inode* d = get(dir);
  if (d == nullptr) return FsStatus::kStale;
  if (d->type != FileType::kDirectory) return FsStatus::kNotDir;
  if (!valid_name(name)) return FsStatus::kInval;
  if (d->entries.count(std::string(name)) != 0) return FsStatus::kExist;
  const InodeId id = allocate(FileType::kDirectory, mode, uid, gid);
  d = get(dir);  // allocate() may have reallocated the inode table
  d->entries.emplace(std::string(name), id);
  d->mtime = ++mtime_counter_;
  return id;
}

FsResult<InodeId> LocalFs::symlink(InodeId dir, std::string_view name,
                                   std::string_view target) {
  Inode* d = get(dir);
  if (d == nullptr) return FsStatus::kStale;
  if (d->type != FileType::kDirectory) return FsStatus::kNotDir;
  if (!valid_name(name)) return FsStatus::kInval;
  if (d->entries.count(std::string(name)) != 0) return FsStatus::kExist;
  const InodeId id = allocate(FileType::kSymlink, 0777, 0, 0);
  d = get(dir);  // allocate() may have reallocated the inode table
  inodes_[id - 1].data = std::string(target);
  d->entries.emplace(std::string(name), id);
  d->mtime = ++mtime_counter_;
  return id;
}

FsResult<Unit> LocalFs::remove(InodeId dir, std::string_view name) {
  Inode* d = get(dir);
  if (d == nullptr) return FsStatus::kStale;
  if (d->type != FileType::kDirectory) return FsStatus::kNotDir;
  const auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return FsStatus::kNoEnt;
  const Inode* target = get(it->second);
  if (target != nullptr && target->type == FileType::kDirectory) return FsStatus::kIsDir;
  release(it->second);
  d->entries.erase(it);
  d->mtime = ++mtime_counter_;
  return Unit{};
}

FsResult<Unit> LocalFs::rmdir(InodeId dir, std::string_view name) {
  Inode* d = get(dir);
  if (d == nullptr) return FsStatus::kStale;
  if (d->type != FileType::kDirectory) return FsStatus::kNotDir;
  const auto it = d->entries.find(std::string(name));
  if (it == d->entries.end()) return FsStatus::kNoEnt;
  const Inode* target = get(it->second);
  if (target == nullptr || target->type != FileType::kDirectory) return FsStatus::kNotDir;
  if (!target->entries.empty()) return FsStatus::kNotEmpty;
  release(it->second);
  d->entries.erase(it);
  d->mtime = ++mtime_counter_;
  return Unit{};
}

FsResult<Unit> LocalFs::rename(InodeId from_dir, std::string_view from_name, InodeId to_dir,
                               std::string_view to_name) {
  Inode* fd = get(from_dir);
  Inode* td = get(to_dir);
  if (fd == nullptr || td == nullptr) return FsStatus::kStale;
  if (fd->type != FileType::kDirectory || td->type != FileType::kDirectory) {
    return FsStatus::kNotDir;
  }
  if (!valid_name(to_name)) return FsStatus::kInval;
  const auto it = fd->entries.find(std::string(from_name));
  if (it == fd->entries.end()) return FsStatus::kNoEnt;
  const InodeId moving = it->second;

  const auto dst = td->entries.find(std::string(to_name));
  if (dst != td->entries.end()) {
    if (dst->second == moving) return Unit{};  // no-op rename onto itself
    // POSIX semantics: replace a non-directory target; refuse directories
    // (keeps the simulation simple; Kosha never renames onto a directory).
    const Inode* existing = get(dst->second);
    if (existing != nullptr && existing->type == FileType::kDirectory) {
      return FsStatus::kIsDir;
    }
    release(dst->second);
    td->entries.erase(dst);
  }
  fd->entries.erase(it);
  td->entries.emplace(std::string(to_name), moving);
  fd->mtime = ++mtime_counter_;
  td->mtime = ++mtime_counter_;
  return Unit{};
}

FsResult<std::vector<DirEntry>> LocalFs::readdir(InodeId dir) const {
  const Inode* d = get(dir);
  if (d == nullptr) return FsStatus::kStale;
  if (d->type != FileType::kDirectory) return FsStatus::kNotDir;
  std::vector<DirEntry> out;
  out.reserve(d->entries.size());
  for (const auto& [name, inode] : d->entries) {
    const Inode* child = get(inode);
    out.push_back({name, inode, child != nullptr ? child->type : FileType::kFile});
  }
  return out;
}

FsResult<Attr> LocalFs::getattr(InodeId inode) const {
  const Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  Attr a;
  a.type = n->type;
  a.mode = n->mode;
  a.uid = n->uid;
  a.gid = n->gid;
  a.size = n->type == FileType::kDirectory ? n->entries.size()
           : n->type == FileType::kFile     ? file_content_bytes(inode)
                                            : n->data.size();
  a.mtime = n->mtime;
  a.inode = inode;
  a.generation = n->generation;
  return a;
}

FsResult<Unit> LocalFs::set_mode(InodeId inode, std::uint32_t mode) {
  Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  n->mode = mode;
  n->mtime = ++mtime_counter_;
  return Unit{};
}

FsResult<Unit> LocalFs::truncate(InodeId inode, std::uint64_t size) {
  Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  if (n->type != FileType::kFile) return FsStatus::kIsDir;
  if (size > n->data.size()) {
    const std::uint64_t extra = size - n->data.size();
    if (would_exceed(extra)) return FsStatus::kNoSpace;
    used_bytes_ += extra;
    n->data.resize(size, '\0');
  } else {
    used_bytes_ -= n->data.size() - size;
    n->data.resize(size);
  }
  n->mtime = ++mtime_counter_;
  return Unit{};
}

FsResult<std::uint32_t> LocalFs::write(InodeId inode, std::uint64_t offset,
                                       std::string_view data) {
  Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  if (n->type != FileType::kFile) return FsStatus::kIsDir;
  const std::uint64_t end = offset + data.size();
  if (end > n->data.size()) {
    const std::uint64_t extra = end - n->data.size();
    if (would_exceed(extra)) return FsStatus::kNoSpace;
    used_bytes_ += extra;
    n->data.resize(end, '\0');
  }
  std::copy(data.begin(), data.end(), n->data.begin() + static_cast<std::ptrdiff_t>(offset));
  n->mtime = ++mtime_counter_;
  return static_cast<std::uint32_t>(data.size());
}

FsResult<std::string> LocalFs::read(InodeId inode, std::uint64_t offset,
                                    std::uint32_t count) const {
  const Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  if (n->type != FileType::kFile) return FsStatus::kIsDir;
  if (offset >= n->data.size()) return std::string{};
  const std::uint64_t avail = n->data.size() - offset;
  return n->data.substr(offset, std::min<std::uint64_t>(count, avail));
}

FsResult<std::string> LocalFs::readlink(InodeId inode) const {
  const Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  if (n->type != FileType::kSymlink) return FsStatus::kInval;
  return n->data;
}

FsResult<InodeId> LocalFs::resolve(std::string_view path) const {
  InodeId cur = kRootInode;
  for (const auto& part : split_path(path)) {
    auto next = lookup(cur, part);
    if (!next.ok()) return next.error();
    cur = next.value();
  }
  return cur;
}

FsResult<InodeId> LocalFs::mkdir_p(std::string_view path) {
  InodeId cur = kRootInode;
  for (const auto& part : split_path(path)) {
    auto next = lookup(cur, part);
    if (next.ok()) {
      const Inode* n = get(next.value());
      if (n == nullptr || n->type != FileType::kDirectory) return FsStatus::kNotDir;
      cur = next.value();
      continue;
    }
    if (next.error() != FsStatus::kNoEnt) return next.error();
    auto made = mkdir(cur, part);
    if (!made.ok()) return made.error();
    cur = made.value();
  }
  return cur;
}

FsResult<Unit> LocalFs::remove_recursive(InodeId dir, std::string_view name) {
  const auto target = lookup(dir, name);
  if (!target.ok()) return target.error();
  const Inode* n = get(target.value());
  if (n == nullptr) return FsStatus::kStale;
  if (n->type == FileType::kDirectory) {
    // Copy names: releasing children mutates the map we iterate.
    std::vector<std::string> names;
    names.reserve(n->entries.size());
    for (const auto& [child_name, inode] : n->entries) {
      (void)inode;
      names.push_back(child_name);
    }
    for (const auto& child : names) {
      if (auto r = remove_recursive(target.value(), child); !r.ok()) return r.error();
    }
    return rmdir(dir, name);
  }
  return remove(dir, name);
}

std::uint64_t LocalFs::file_content_bytes(InodeId id) const {
  const Inode* n = get(id);
  return n == nullptr ? 0 : n->data.size();
}

std::uint64_t LocalFs::subtree_bytes(InodeId inode) const {
  const Inode* n = get(inode);
  if (n == nullptr) return 0;
  if (n->type == FileType::kFile) return file_content_bytes(inode);
  if (n->type == FileType::kSymlink) return 0;
  std::uint64_t total = 0;
  for (const auto& [name, child] : n->entries) {
    (void)name;
    total += subtree_bytes(child);
  }
  return total;
}

std::uint64_t LocalFs::subtree_file_count(InodeId inode) const {
  const Inode* n = get(inode);
  if (n == nullptr) return 0;
  if (n->type == FileType::kFile) return 1;
  if (n->type == FileType::kSymlink) return 0;
  std::uint64_t total = 0;
  for (const auto& [name, child] : n->entries) {
    (void)name;
    total += subtree_file_count(child);
  }
  return total;
}

void LocalFs::purge() {
  // Reset to an empty root but keep generation counters monotonic so any
  // outstanding handles are detected as stale.
  std::vector<std::uint64_t> generations(inodes_.size());
  for (std::size_t i = 0; i < inodes_.size(); ++i) generations[i] = inodes_[i].generation;
  free_list_.clear();
  used_bytes_ = 0;
  live_inodes_ = 0;
  for (std::size_t i = 0; i < inodes_.size(); ++i) {
    inodes_[i] = Inode{};
    inodes_[i].generation = generations[i] + 1;
    if (i + 1 != kRootInode) free_list_.push_back(i + 1);
  }
  Inode& root = inodes_[kRootInode - 1];
  root.allocated = true;
  root.type = FileType::kDirectory;
  root.mode = 0755;
  live_inodes_ = 1;
}

}  // namespace kosha::fs

// Ground-truth Ring tests: ownership and neighbor queries against brute
// force.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "pastry/ring.hpp"

namespace kosha::pastry {
namespace {

bool brute_closer(Key target, NodeId a, NodeId b) {
  const auto da = ring_distance(a, target);
  const auto db = ring_distance(b, target);
  return da != db ? da < db : a < b;
}

TEST(Ring, InsertRemoveContains) {
  Ring ring;
  EXPECT_TRUE(ring.empty());
  ring.insert({0, 10}, 1);
  ring.insert({0, 20}, 2);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_TRUE(ring.contains({0, 10}));
  ring.remove({0, 10});
  EXPECT_FALSE(ring.contains({0, 10}));
  ring.remove({0, 10});  // idempotent
  EXPECT_EQ(ring.size(), 1u);
}

TEST(Ring, DuplicateInsertThrows) {
  Ring ring;
  ring.insert({0, 10}, 1);
  EXPECT_THROW(ring.insert({0, 10}, 2), std::invalid_argument);
}

TEST(Ring, TagLookup) {
  Ring ring;
  ring.insert({0, 10}, 7);
  EXPECT_EQ(ring.tag_of({0, 10}), 7u);
  EXPECT_THROW((void)ring.tag_of({0, 11}), std::invalid_argument);
}

TEST(Ring, OwnerWrapsAround) {
  Ring ring;
  ring.insert({0, 100}, 0);
  ring.insert(Uint128::max() - Uint128(0, 50), 1);
  // Key 5 is closer (distance 56) to max-50 than to 100 (distance 95).
  EXPECT_EQ(ring.owner_tag({0, 5}), 1u);
  EXPECT_EQ(ring.owner_tag({0, 90}), 0u);
}

TEST(Ring, SingleNodeOwnsEverything) {
  Ring ring;
  ring.insert({3, 3}, 9);
  Rng rng(50);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ring.owner_tag(rng.next_id()), 9u);
}

class RingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingProperty, OwnerMatchesBruteForce) {
  Rng rng(GetParam() * 131);
  std::vector<NodeId> ids;
  Ring ring;
  for (std::size_t i = 0; i < GetParam(); ++i) {
    const NodeId id = rng.next_id();
    ids.push_back(id);
    ring.insert(id, static_cast<Ring::Tag>(i));
  }
  for (int trial = 0; trial < 300; ++trial) {
    const Key key = rng.next_id();
    const NodeId expected = *std::min_element(
        ids.begin(), ids.end(), [&](NodeId a, NodeId b) { return brute_closer(key, a, b); });
    EXPECT_EQ(ring.owner(key), expected);
  }
}

TEST_P(RingProperty, NeighborsMatchBruteForce) {
  Rng rng(GetParam() * 137);
  std::vector<NodeId> ids;
  Ring ring;
  for (std::size_t i = 0; i < GetParam(); ++i) {
    const NodeId id = rng.next_id();
    ids.push_back(id);
    ring.insert(id, static_cast<Ring::Tag>(i));
  }
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const NodeId self = ids[rng.next_below(ids.size())];
      std::vector<NodeId> others;
      for (const NodeId id : ids) {
        if (id != self) others.push_back(id);
      }
      std::sort(others.begin(), others.end(),
                [&](NodeId a, NodeId b) { return brute_closer(self, a, b); });
      others.resize(std::min(k, others.size()));
      EXPECT_EQ(ring.neighbors(self, k), others);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingProperty, ::testing::Values(1, 2, 3, 5, 16, 100));

}  // namespace
}  // namespace kosha::pastry

// At-most-once semantics end to end: non-idempotent operations driven
// through the full koshad ladder must never double-execute or surface a
// spurious kExist/kNoEnt, even when retries exhaust with lost replies
// (kTimedOut) and the ladder re-invokes the operation — and a client
// incarnation revived after a crash must not be answered out of servers'
// duplicate-request caches populated by its previous life.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kosha/audit.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

[[nodiscard]] bool is_retryable(nfs::NfsStat status) {
  return status == nfs::NfsStat::kUnreachable || status == nfs::NfsStat::kTimedOut ||
         status == nfs::NfsStat::kStale;
}

/// Drive one non-idempotent op the way a correct NFS client would: retry
/// retryable failures on the virtual clock, and after a kTimedOut (the op
/// may have executed) accept `done_status` — the "already applied" error —
/// as success. Any other error, or `done_status` with no preceding
/// kTimedOut, is a spurious failure and fails the test.
template <typename Op>
void drive(SimClock& clock, const char* what, nfs::NfsStat done_status, Op&& op) {
  bool maybe_done = false;
  for (int tries = 0; tries < 100; ++tries) {
    const nfs::NfsStat status = op();
    if (status == nfs::NfsStat::kOk) return;
    if (status == done_status && maybe_done) return;
    ASSERT_TRUE(is_retryable(status))
        << what << ": spurious " << nfs::to_string(status)
        << (maybe_done ? " (after kTimedOut)" : " (no kTimedOut ever reported)");
    if (status == nfs::NfsStat::kTimedOut) maybe_done = true;
    clock.advance(SimDuration::millis(200));
  }
  FAIL() << what << ": never succeeded";
}

TEST(AtMostOnce, LossyNetworkNeverYieldsSpuriousExistOrNoEnt) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.seed = 7001;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  // The working directory must live on a remote host: loopback traffic is
  // never judged by the fault plan, so a host-0 primary would see no loss
  // at all and the test would exercise nothing.
  net::HostId primary = net::kInvalidHost;
  std::string dir_path;
  for (int i = 0; i < 10 && primary == net::kInvalidHost; ++i) {
    const std::string candidate = "/s" + std::to_string(i);
    ASSERT_TRUE(mount.mkdir_p(candidate).ok());
    for (const net::HostId host : cluster.live_hosts()) {
      if (host == 0) continue;
      for (const auto& [anchor, name] : cluster.replicas(host).primaries()) {
        if (name == candidate.substr(1)) {
          primary = host;
          dir_path = candidate;
        }
      }
    }
  }
  ASSERT_NE(primary, net::kInvalidHost);
  const auto dir = mount.resolve(dir_path);
  ASSERT_TRUE(dir.ok());
  Koshad& daemon = cluster.daemon(0);
  SimClock& clock = cluster.clock();

  // Heavy loss: a third of all remote messages vanish, so retry ladders
  // regularly exhaust with replies lost — the exact regime in which a
  // re-invoked CREATE/REMOVE/RENAME used to double-execute and report
  // kExist/kNoEnt for its own earlier success.
  net::FaultPlanConfig fault;
  fault.seed = 1234;
  fault.drop_probability = 0.33;
  cluster.network().set_fault_plan(std::make_unique<net::FaultPlan>(fault));

  constexpr int kFiles = 30;
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "f" + std::to_string(i);
    drive(clock, "create", nfs::NfsStat::kExist, [&] {
      const auto r = daemon.create(*dir, name);
      return r.ok() ? nfs::NfsStat::kOk : r.error();
    });
  }
  for (int i = 0; i < kFiles; ++i) {
    const std::string from = "f" + std::to_string(i);
    const std::string to = "g" + std::to_string(i);
    // A rename that already took effect leaves the source gone: kNoEnt is
    // the double-execution symptom here.
    drive(clock, "rename", nfs::NfsStat::kNoEnt, [&] {
      const auto r = daemon.rename(*dir, from, *dir, to);
      return r.ok() ? nfs::NfsStat::kOk : r.error();
    });
  }
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "g" + std::to_string(i);
    drive(clock, "remove", nfs::NfsStat::kNoEnt, [&] {
      const auto r = daemon.remove(*dir, name);
      return r.ok() ? nfs::NfsStat::kOk : r.error();
    });
  }

  EXPECT_GT(cluster.network().stats().retries, 0u);  // the chaos was real
  // Quiesce the network for the final verification: the probabilistic drop
  // plan never expires, and the audit's own listings would otherwise time
  // out spuriously.
  cluster.network().set_fault_plan(
      std::make_unique<net::FaultPlan>(net::FaultPlanConfig{}));

  // Every file was created, renamed, and removed exactly once: nothing
  // may remain, and the replica bookkeeping done by adopted operations
  // must agree with the primaries.
  const auto listing = daemon.readdir(*dir);
  ASSERT_TRUE(listing.ok());
  EXPECT_TRUE(listing->entries.empty());
  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(AtMostOnce, RevivedClientIsNotAnsweredFromItsPreviousLifesDrcEntries) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.seed = 7100;
  KoshaCluster cluster(config);

  // Find a directory whose primary is a remote host, so that host's DRC
  // accumulates (client-0, xid) entries that survive client 0's crash.
  net::HostId primary = net::kInvalidHost;
  std::string dir;
  {
    KoshaMount mount(&cluster.daemon(0));
    for (int i = 0; i < 10 && primary == net::kInvalidHost; ++i) {
      const std::string candidate = "/d" + std::to_string(i);
      ASSERT_TRUE(mount.mkdir_p(candidate).ok());
      for (const net::HostId host : cluster.live_hosts()) {
        if (host == 0) continue;
        for (const auto& [anchor, name] : cluster.replicas(host).primaries()) {
          if (name == candidate.substr(1)) {
            primary = host;
            dir = candidate;
          }
        }
      }
    }
    ASSERT_NE(primary, net::kInvalidHost);
    // First incarnation: many non-idempotent RPCs fill the primary's DRC
    // with low-xid entries for client 0.
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(mount.write_file(dir + "/a" + std::to_string(i), "old").ok());
    }
    EXPECT_GT(cluster.server(primary).drc_stats().stores, 0u);
  }

  // Client 0 crashes and is revived: its daemon is rebuilt and its xid
  // counter restarts at 0, below values already cached at the primary.
  cluster.fail_node(0);
  cluster.revive_node(0);

  // The network is loss-free, so nothing retransmits: any DRC hit from
  // here on can only be a stale previous-incarnation entry masquerading
  // as a retry — exactly what the boot verifier must prevent.
  const auto hits_before = cluster.server(primary).drc_stats().hits;
  KoshaMount reborn(&cluster.daemon(0));
  for (int i = 0; i < 20; ++i) {
    const std::string file = dir + "/b" + std::to_string(i);
    ASSERT_TRUE(reborn.write_file(file, "new" + std::to_string(i)).ok()) << file;
  }
  EXPECT_EQ(cluster.server(primary).drc_stats().hits, hits_before);
  for (int i = 0; i < 20; ++i) {
    const std::string file = dir + "/b" + std::to_string(i);
    EXPECT_EQ(reborn.read_file(file).value_or("<gone>"), "new" + std::to_string(i)) << file;
  }
  // The first incarnation's files survived via replica promotion.
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(reborn.exists(dir + "/a" + std::to_string(i))) << i;
  }
  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

}  // namespace
}  // namespace kosha

// Placement-logic tests: anchor depth, salting, key derivation, and
// stored-path construction (paper §3.1-§3.3).

#include <gtest/gtest.h>

#include "kosha/placement.hpp"

namespace kosha {
namespace {

TEST(Placement, AnchorDepthClampsToLevel) {
  EXPECT_EQ(anchor_depth(1, 0), 0u);
  EXPECT_EQ(anchor_depth(1, 1), 1u);
  EXPECT_EQ(anchor_depth(1, 5), 1u);
  EXPECT_EQ(anchor_depth(3, 2), 2u);
  EXPECT_EQ(anchor_depth(3, 7), 3u);
}

TEST(Placement, DistributedDepths) {
  EXPECT_FALSE(is_distributed_depth(2, 0));
  EXPECT_TRUE(is_distributed_depth(2, 1));
  EXPECT_TRUE(is_distributed_depth(2, 2));
  EXPECT_FALSE(is_distributed_depth(2, 3));
}

TEST(Placement, SaltedNames) {
  EXPECT_EQ(salted_name("src", 0), "src");
  EXPECT_EQ(salted_name("src", 1), "src#1");
  EXPECT_EQ(salted_name("src", 15), "src#15");
}

TEST(Placement, PlainNameStripsSalt) {
  EXPECT_EQ(plain_name("src"), "src");
  EXPECT_EQ(plain_name("src#3"), "src");
  EXPECT_EQ(plain_name("sdirm#"), "sdirm");
}

TEST(Placement, KeysDifferBySalt) {
  // Salting must move the directory to a (very likely) different node.
  EXPECT_NE(key_for_name("src"), key_for_name("src#1"));
  EXPECT_NE(key_for_name("src#1"), key_for_name("src#2"));
}

TEST(Placement, KeyIsDeterministicAndNameOnly) {
  // The paper hashes only the directory *name*: two directories with the
  // same name collide onto the same node regardless of their paths.
  EXPECT_EQ(key_for_name("src"), key_for_name("src"));
  EXPECT_EQ(root_key(), key_for_name("/"));
}

TEST(Placement, AnchorContainer) {
  EXPECT_EQ(anchor_container("src"), "src");
  EXPECT_EQ(anchor_container("src#2"), "src#2");
  EXPECT_EQ(anchor_container("/"), "#root");
}

TEST(Placement, StoredPathPutsEffectiveNameAtAnchor) {
  // /a/x/y with anchor depth 2 and effective name "x#1":
  const std::vector<std::string> components{"a", "x", "y"};
  EXPECT_EQ(stored_path(components, 2, "x#1"), "/.a/x#1/a/x#1/y");
  EXPECT_EQ(stored_path(components, 1, "a"), "/.a/a/a/x/y");
  EXPECT_EQ(stored_path(components, 3, "y"), "/.a/y/a/x/y");
}

TEST(Placement, StoredPathForRootAnchor) {
  EXPECT_EQ(root_stored_path(), "/.a/#root");
  EXPECT_EQ(stored_path({"f"}, 0, "/"), "/.a/#root/f");
}

TEST(Placement, CollidingNamesDistinctStoredPaths) {
  // Two same-named directories share a container but keep distinct paths.
  const auto p1 = stored_path({"p", "src"}, 2, "src");
  const auto p2 = stored_path({"q", "src"}, 2, "src");
  EXPECT_NE(p1, p2);
  EXPECT_EQ(p1, "/.a/src/p/src");
  EXPECT_EQ(p2, "/.a/src/q/src");
}

}  // namespace
}  // namespace kosha

// koshad — path resolution and placement (paper §3, §4.1).
//
// The resolution half of the daemon: walking virtual paths to their
// storage nodes (directory-name hashing through Pastry, following special
// links for distributed/redirected directories), the remote lookup/mkdir
// walks that run against a storage node's NFS server, capacity-redirected
// placement of new distributed directories, and scaffolding cleanup.
// Request handlers live in koshad.cpp; the failover ladder in
// koshad_failover.cpp.

#include "kosha/koshad.hpp"

#include "common/metrics.hpp"
#include "common/path.hpp"
#include "kosha/placement.hpp"

namespace kosha {

pastry::RouteResult Koshad::route(pastry::Key key) {
  const auto result = runtime_->overlay->route(host_, key);
  ++stats_.dht_lookups;
  stats_.dht_hops += result.hops;
  if (route_hops_hist_ != nullptr) route_hops_hist_->record(static_cast<double>(result.hops));
  return result;
}

net::HostId Koshad::host_of(pastry::NodeId node) const {
  return runtime_->overlay->host_of(node);
}

nfs::NfsResult<Koshad::Resolved> Koshad::resolve_path(const std::string& path, bool fresh) {
  if (!fresh) {
    if (const auto vh = vht_.find_by_path(path)) {
      const VhEntry* entry = vht_.find(*vh);
      return Resolved{entry->real.server, entry->real, entry->stored_path, entry->type};
    }
  }
  if (path == "/") {
    const auto owner = route(root_key());
    const net::HostId host = host_of(owner.owner);
    const std::string stored = root_stored_path();
    const auto handle = remote_lookup_path(host, stored);
    if (!handle.ok()) return handle.error();
    vht_.bind("/", stored, handle->handle, fs::FileType::kDirectory);
    return Resolved{host, handle->handle, stored, fs::FileType::kDirectory};
  }
  const auto parent = resolve_path(path_parent(path), fresh);
  if (!parent.ok()) return parent.error();
  return resolve_entry(*parent, path, path_basename(path), fresh);
}

nfs::NfsResult<Koshad::Resolved> Koshad::resolve_entry(const Resolved& parent,
                                                       const std::string& path,
                                                       std::string_view name, bool fresh) {
  (void)fresh;
  note_forward(parent.host);
  const auto looked = client_.lookup(parent.handle, name);
  if (!looked.ok()) return looked.error();

  if (looked->attr.type == fs::FileType::kSymlink) {
    // Special link: the directory is distributed; its target is the
    // effective (possibly salted) name to hash (paper §3.3).
    note_forward(parent.host);
    const auto target = client_.readlink(looked->handle);
    if (!target.ok()) return target.error();
    const std::string& effective = target.value();

    const auto owner = route(key_for_name(effective));
    const net::HostId host = host_of(owner.owner);
    const auto components = split_path(path);
    const std::string stored =
        stored_path(components, static_cast<unsigned>(components.size()), effective);
    const auto handle = remote_lookup_path(host, stored);
    if (!handle.ok()) return handle.error();
    vht_.bind(path, stored, handle->handle, handle->attr.type);
    return Resolved{host, handle->handle, stored, handle->attr.type, handle->attr};
  }

  const std::string stored = path_child(parent.stored_path, name);
  vht_.bind(path, stored, looked->handle, looked->attr.type);
  return Resolved{parent.host, looked->handle, stored, looked->attr.type, looked->attr};
}

nfs::NfsResult<nfs::HandleReply> Koshad::remote_lookup_path(net::HostId host,
                                                            const std::string& stored_path) {
  // "Kosha looks up the entire path on R, as if it is an NFS client of R"
  // (paper §4.1.3).
  note_forward(host);
  const auto root = client_.mount(host);
  if (!root.ok()) return root.error();
  nfs::HandleReply current{*root, {}};
  current.attr.type = fs::FileType::kDirectory;
  for (const auto& component : split_path(stored_path)) {
    note_forward(host);
    const auto next = client_.lookup(current.handle, component);
    if (!next.ok()) return next.error();
    current = next.value();
  }
  return current;
}

nfs::NfsResult<nfs::HandleReply> Koshad::remote_mkdir_p(net::HostId host,
                                                        const std::string& stored_path,
                                                        std::uint32_t leaf_mode,
                                                        std::uint32_t leaf_uid,
                                                        std::uint32_t leaf_gid) {
  note_forward(host);
  const auto root = client_.mount(host);
  if (!root.ok()) return root.error();
  nfs::HandleReply current{*root, {}};
  current.attr.type = fs::FileType::kDirectory;
  const auto components = split_path(stored_path);
  for (std::size_t i = 0; i < components.size(); ++i) {
    const bool leaf = i + 1 == components.size();
    note_forward(host);
    auto next = client_.lookup(current.handle, components[i]);
    if (!next.ok()) {
      if (next.error() != nfs::NfsStat::kNoEnt) return next.error();
      note_forward(host);
      // Scaffolding directories get defaults; the caller's attributes
      // apply to the directory being created.
      next = leaf ? client_.mkdir(current.handle, components[i], leaf_mode, leaf_uid, leaf_gid)
                  : client_.mkdir(current.handle, components[i]);
      if (!next.ok()) return next.error();
    }
    current = next.value();
  }
  return current;
}

void Koshad::prune_scaffolding(net::HostId host, std::string cursor, ReplicaManager* rm) {
  // Prune now-empty scaffolding bottom-up, container included, but stop at
  // a directory still used by a colliding same-name anchor (paper §4.1.5).
  // Best-effort: any error simply leaves the remaining scaffolding behind.
  while (path_depth(cursor) >= 2) {  // never remove /.a itself
    const auto cursor_handle = remote_lookup_path(host, cursor);
    if (!cursor_handle.ok()) break;
    note_forward(host);
    const auto cursor_listing = client_.readdir(cursor_handle->handle);
    if (!cursor_listing.ok() || !cursor_listing->entries.empty()) break;
    const auto up = remote_lookup_path(host, path_parent(cursor));
    if (!up.ok()) break;
    note_forward(host);
    if (!client_.rmdir(up->handle, path_basename(cursor)).ok()) break;
    if (rm != nullptr) stats_.mirror_rpcs += rm->mirror_rmdir(cursor);
    cursor = path_parent(cursor);
  }
}

nfs::NfsResult<std::pair<pastry::NodeId, std::string>> Koshad::place_directory(
    std::string_view name) {
  // Iterative salted redirection (paper §3.3): rehash with a salt until a
  // node below the utilization threshold is found or retries run out.
  for (unsigned salt = 0; salt <= runtime_->config.max_redirects; ++salt) {
    const std::string effective = salted_name(name, salt);
    const auto owner = route(key_for_name(effective));
    const net::HostId host = host_of(owner.owner);
    note_forward(host);
    const auto stat = client_.fsstat(host);
    if (stat.ok() && stat->utilization < runtime_->config.redirect_threshold) {
      return std::make_pair(owner.owner, effective);
    }
    ++stats_.redirects;
  }
  return nfs::NfsStat::kNoSpace;
}

}  // namespace kosha

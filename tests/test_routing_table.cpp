// Routing-table tests: slot placement by shared prefix, next-hop
// selection, and removal.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pastry/routing_table.hpp"

namespace kosha::pastry {
namespace {

const PastryConfig kConfig{};

TEST(RoutingTable, InsertPlacesByPrefixAndDigit) {
  const NodeId owner = Uint128::from_hex("a0000000000000000000000000000000");
  RoutingTable table(owner, kConfig);
  const NodeId peer = Uint128::from_hex("ab000000000000000000000000000000");
  EXPECT_TRUE(table.insert(peer));
  // Shares 1 digit ("a"); next digit of peer is "b".
  EXPECT_EQ(table.entry(1, 0xb), peer);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, RejectsOwnerAndOccupiedSlot) {
  const NodeId owner = Uint128::from_hex("a0000000000000000000000000000000");
  RoutingTable table(owner, kConfig);
  EXPECT_FALSE(table.insert(owner));
  const NodeId first = Uint128::from_hex("b0000000000000000000000000000000");
  const NodeId second = Uint128::from_hex("b1000000000000000000000000000000");
  EXPECT_TRUE(table.insert(first));
  EXPECT_FALSE(table.insert(second));  // same row 0, column 0xb
  EXPECT_TRUE(table.contains(first));
  EXPECT_FALSE(table.contains(second));
}

TEST(RoutingTable, NextHopUsesKeyDigit) {
  const NodeId owner = Uint128::from_hex("a0000000000000000000000000000000");
  RoutingTable table(owner, kConfig);
  const NodeId peer = Uint128::from_hex("c0000000000000000000000000000000");
  (void)table.insert(peer);
  const Key key = Uint128::from_hex("c1234000000000000000000000000000");
  EXPECT_EQ(table.next_hop(key), peer);
  const Key other = Uint128::from_hex("d1234000000000000000000000000000");
  EXPECT_EQ(table.next_hop(other), std::nullopt);
}

TEST(RoutingTable, NextHopForOwnKeyIsEmpty) {
  const NodeId owner = Uint128::from_hex("a0000000000000000000000000000000");
  RoutingTable table(owner, kConfig);
  EXPECT_EQ(table.next_hop(owner), std::nullopt);
}

TEST(RoutingTable, RemoveFreesSlot) {
  const NodeId owner = Uint128::from_hex("a0000000000000000000000000000000");
  RoutingTable table(owner, kConfig);
  const NodeId peer = Uint128::from_hex("b0000000000000000000000000000000");
  (void)table.insert(peer);
  EXPECT_TRUE(table.remove(peer));
  EXPECT_FALSE(table.remove(peer));
  EXPECT_EQ(table.size(), 0u);
  const NodeId replacement = Uint128::from_hex("b1000000000000000000000000000000");
  EXPECT_TRUE(table.insert(replacement));
}

TEST(RoutingTable, EntriesListsAllPopulated) {
  Rng rng(41);
  const NodeId owner = rng.next_id();
  RoutingTable table(owner, kConfig);
  std::size_t inserted = 0;
  for (int i = 0; i < 100; ++i) {
    if (table.insert(rng.next_id())) ++inserted;
  }
  EXPECT_EQ(table.entries().size(), inserted);
  EXPECT_EQ(table.size(), inserted);
  for (const NodeId id : table.entries()) EXPECT_TRUE(table.contains(id));
}

TEST(RoutingTable, NextHopSharesLongerPrefix) {
  // Property: whatever next_hop returns shares strictly more digits with
  // the key than the owner does.
  Rng rng(42);
  const NodeId owner = rng.next_id();
  RoutingTable table(owner, kConfig);
  for (int i = 0; i < 500; ++i) (void)table.insert(rng.next_id());
  for (int trial = 0; trial < 200; ++trial) {
    const Key key = rng.next_id();
    const auto hop = table.next_hop(key);
    if (!hop.has_value()) continue;
    EXPECT_GT(hop->shared_prefix_length(key, 4), owner.shared_prefix_length(key, 4));
  }
}

}  // namespace
}  // namespace kosha::pastry

file(REMOVE_RECURSE
  "CMakeFiles/test_sha1.dir/test_sha1.cpp.o"
  "CMakeFiles/test_sha1.dir/test_sha1.cpp.o.d"
  "test_sha1"
  "test_sha1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sha1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_result_and_log.dir/test_result_and_log.cpp.o"
  "CMakeFiles/test_result_and_log.dir/test_result_and_log.cpp.o.d"
  "test_result_and_log"
  "test_result_and_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_result_and_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#pragma once

// Deterministic discrete-event scheduler over virtual time.
//
// The execution core of the event-driven simulation model (DESIGN §6):
// callbacks are scheduled at absolute virtual times and dispatched in
// (time, sequence) order, advancing the shared SimClock to each event's
// timestamp. Determinism rules:
//   * no wall-clock input anywhere — time exists only as SimDuration;
//   * ties at the same timestamp dispatch in scheduling order (a monotonic
//     sequence number assigned at schedule time), so the dispatch order is
//     a pure function of the schedule calls;
//   * randomness (e.g. jittered timers) comes exclusively from the loop's
//     seeded Rng stream, so same-seed runs replay byte-identically.
//
// Cancellation is lazy: cancel() marks the entry and the heap skips it on
// pop, keeping schedule/cancel O(log n) without heap surgery.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"

namespace kosha {

class SimProfiler;

class EventLoop {
 public:
  using EventId = std::uint64_t;
  /// Never returned by schedule_*; safe "no event" sentinel for callers
  /// that keep a pending-timer handle.
  static constexpr EventId kInvalidEvent = 0;

  explicit EventLoop(SimClock* clock, std::uint64_t seed = 0);

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Schedule `fn` at absolute virtual time `when`. Times in the past are
  /// clamped to now: the event runs next, it cannot rewind the clock.
  /// `category` labels the event for the profiler's per-category cost
  /// accounting; it must point at storage outliving the event (string
  /// literals). Untagged call sites fall into "event".
  EventId schedule_at(SimDuration when, std::function<void()> fn);
  EventId schedule_at(SimDuration when, const char* category, std::function<void()> fn);
  /// Schedule `fn` at now + `delay` (timers, retry backoff).
  EventId schedule_after(SimDuration delay, std::function<void()> fn);
  EventId schedule_after(SimDuration delay, const char* category, std::function<void()> fn);

  /// Cancel a pending event. Returns false when the event already ran,
  /// was cancelled before, or never existed.
  bool cancel(EventId id);

  /// Dispatch the earliest pending event, advancing the clock to its
  /// timestamp. Returns false when the queue is empty.
  bool step();

  /// Dispatch until the queue drains. Returns the number of events run.
  std::size_t run_until_idle();

  /// Dispatch until `done()` holds (checked before every event) or the
  /// queue drains. Returns the number of events run. This is how the
  /// synchronous RPC wrappers block on their own completion.
  std::size_t run_until(const std::function<bool()>& done);

  /// Dispatch every event with timestamp <= `when`, then advance the
  /// clock to `when` even if the queue still holds later events. The
  /// churn simulator uses this to sample cluster state on a fixed grid
  /// while timers keep firing between samples. Returns events run.
  std::size_t run_until_time(SimDuration when);

  [[nodiscard]] SimDuration now() const { return clock_->now(); }
  [[nodiscard]] SimClock& clock() { return *clock_; }
  /// Pending (scheduled, not yet run or cancelled) events.
  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  /// The loop's deterministic randomness stream; the only sanctioned
  /// source of scheduling jitter.
  [[nodiscard]] Rng& rng() { return rng_; }
  /// A uniform draw in [0, max] from the loop's stream, for jittered
  /// timers. Deterministic under the loop's seed.
  [[nodiscard]] SimDuration jitter(SimDuration max);

  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Attach the simulator profiler (nullptr = off, the default). When set,
  /// step() brackets each callback with wall-clock reads through the
  /// profiler's sanctioned seam and records per-category self time. The
  /// profiler is a pure observer: dispatch order, clock movement and the
  /// Rng stream are identical with it on or off.
  void set_profiler(SimProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] SimProfiler* profiler() const { return profiler_; }

 private:
  struct Entry {
    SimDuration when;
    EventId id = kInvalidEvent;  // monotonic: doubles as the tie-break
    const char* category = "event";
    std::function<void()> fn;
  };
  /// Min-heap order: earliest time first, then lowest (earliest-assigned)
  /// id — the monotonic tie-break that keeps same-time dispatch FIFO.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when.ns != b.when.ns) return a.when.ns > b.when.ns;
      return a.id > b.id;
    }
  };

  SimClock* clock_;
  Rng rng_;
  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  Stats stats_;
  SimProfiler* profiler_ = nullptr;
  /// Wall time consumed by nested dispatches inside the currently-running
  /// callback (profiling only); lets step() report self time, not
  /// inclusive time, when callbacks drive the loop re-entrantly.
  std::uint64_t nested_wall_ns_ = 0;
};

}  // namespace kosha

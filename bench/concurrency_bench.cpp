// Concurrency benchmark for the event-driven execution core.
//
// Part 1 — replica fan-out: a K=3 cluster runs the same single-client
// create/write workload under each MirrorMode. Sequential mirroring
// charges the foreground op the SUM of the per-target wire times;
// overlapped mirroring charges only the slowest target (MAX); background
// (the paper's model) charges nothing. The per-batch sum/max accumulators
// in MirrorStats cross-check the measured makespans.
//
// Part 2 — multi-client scaling: for each clients count, the same seeded
// workload runs with overlapping client timelines and again with the
// serial one-op-at-a-time charging model. Overlap makespan below the
// serial makespan — and N-client makespan below N x the 1-client run — is
// the concurrency win the event loop buys.
//
// Flags: --clients=1,4,16 (csv), --nodes, --files, --bytes, --reads,
//        --zipf=S (read-pass Zipf popularity skew; 0 = legacy round-robin),
//        --seed, --metrics-out=FILE (JSON summary for CI artifacts),
//        --profile-out=FILE (BENCH_sim_profile.json: one profiling-enabled
//        run at the largest client count, with per-event-category costs,
//        throughput, latency percentiles and the critical-path breakdown).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/profile.hpp"
#include "common/table.hpp"
#include "kosha/cluster.hpp"
#include "sim/concurrency_driver.hpp"

namespace {

using namespace kosha;

std::vector<std::size_t> parse_csv_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return out;
}

ClusterConfig base_config(std::size_t nodes, std::uint64_t seed, unsigned replicas,
                          KoshaConfig::MirrorMode mode) {
  ClusterConfig config;
  config.nodes = nodes;
  config.seed = seed;
  config.kosha.replicas = replicas;
  config.kosha.mirror_mode = mode;
  return config;
}

sim::WorkloadResult run_once(const ClusterConfig& config, const sim::WorkloadConfig& workload,
                             MirrorStats* mirrors = nullptr) {
  KoshaCluster cluster(config);
  const auto result = sim::run_multi_client_workload(cluster, workload);
  if (mirrors != nullptr) {
    for (const auto host : cluster.live_hosts()) {
      const MirrorStats& ms = cluster.replicas(host).mirror_stats();
      mirrors->rpcs += ms.rpcs;
      mirrors->batches += ms.batches;
      mirrors->sequential += ms.sequential;
      mirrors->overlapped += ms.overlapped;
    }
  }
  return result;
}

/// One fully-instrumented run (metrics + tracing + profiling) whose
/// accounting becomes BENCH_sim_profile.json. Wall-derived numbers vary run
/// to run by nature; kosha_prof's compare mode skips/ratio-gates them.
int write_profile_json(const std::string& out, std::size_t nodes, std::uint64_t seed,
                       sim::WorkloadConfig workload, std::size_t clients) {
  ClusterConfig config = base_config(nodes, seed, 1, KoshaConfig::MirrorMode::kBackground);
  config.observability.metrics = true;
  config.observability.tracing = true;
  config.observability.profiling = true;
  KoshaCluster cluster(config);
  workload.clients = clients;
  const auto result = sim::run_multi_client_workload(cluster, workload);

  const SimProfiler& prof = cluster.profiler();
  const double wall_s = static_cast<double>(prof.wall_elapsed_ns()) * 1e-9;
  std::string json = "{\n";
  json += "  \"bench\": \"concurrency_bench\",\n";
  json += "  \"nodes\": " + std::to_string(nodes) + ",\n";
  json += "  \"clients\": " + std::to_string(clients) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"ops\": " + std::to_string(result.ops) + ",\n";
  json += "  \"failures\": " + std::to_string(result.failures) + ",\n";
  json += "  \"events\": " + std::to_string(prof.events()) + ",\n";
  json += "  \"virtual_ms\": " + json_number(cluster.clock().now().to_millis()) + ",\n";
  json += "  \"makespan_ms\": " + json_number(result.makespan.to_millis()) + ",\n";
  json += "  \"wall_ms\": " + json_number(wall_s * 1e3) + ",\n";
  json += "  \"events_per_sec\": " +
          json_number(wall_s > 0 ? static_cast<double>(prof.events()) / wall_s : 0) + ",\n";
  json += "  \"ops_per_sec\": " +
          json_number(wall_s > 0 ? static_cast<double>(prof.ops()) / wall_s : 0) + ",\n";
  json += "  \"categories\": {";
  bool first = true;
  for (const auto& [name, c] : prof.categories()) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + json_escape(name) + "\": {\"count\": " + std::to_string(c.count) +
            ", \"wall_us\": " + json_number(static_cast<double>(c.wall_ns) * 1e-3) + "}";
  }
  json += "},\n";
  if (const Histogram* lat = cluster.metrics().find_histogram("sim.op.latency_us");
      lat != nullptr && lat->count() > 0) {
    json += "  \"latency_us\": {\"p50\": " + json_number(lat->percentile(50)) +
            ", \"p95\": " + json_number(lat->percentile(95)) +
            ", \"p99\": " + json_number(lat->percentile(99)) + "},\n";
  }
  const auto critical = prof::analyze_critical_path(cluster.tracer().spans());
  json += "  \"critical\": " + prof::critical_report_json(critical) + "\n";
  json += "}\n";

  std::ofstream file(out, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << json;
  std::printf("\nwrote %s (%llu events, %zu ops, %.0f events/sec)\n", out.c_str(),
              static_cast<unsigned long long>(prof.events()), result.ops,
              wall_s > 0 ? static_cast<double>(prof.events()) / wall_s : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (const auto err =
          args.check_known("clients,nodes,files,bytes,reads,zipf,seed,metrics-out,profile-out");
      !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const auto clients_list = parse_csv_sizes(args.get_string("clients", "1,4,16"));
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  sim::WorkloadConfig workload;
  workload.files_per_client = static_cast<std::size_t>(args.get_int("files", 4));
  workload.file_bytes = static_cast<std::size_t>(args.get_int("bytes", 4096));
  workload.reads_per_file = static_cast<std::size_t>(args.get_int("reads", 2));
  workload.zipf_s = args.get_double("zipf", 0.0);

  std::printf("Concurrency bench: event-driven core (%zu nodes, seed=%llu, zipf=%.2f)\n\n",
              nodes, static_cast<unsigned long long>(seed), workload.zipf_s);

  // --- Part 1: K=3 replica fan-out, one client -----------------------------
  constexpr unsigned kReplicas = 3;
  sim::WorkloadConfig single = workload;
  single.clients = 1;
  single.reads_per_file = 0;  // mutations only: reads never mirror

  double mode_ms[3] = {0, 0, 0};
  MirrorStats mirrors;  // accumulators are mode-independent; sample once
  {
    const auto bg = run_once(
        base_config(nodes, seed, kReplicas, KoshaConfig::MirrorMode::kBackground), single);
    const auto seq = run_once(
        base_config(nodes, seed, kReplicas, KoshaConfig::MirrorMode::kSequential), single);
    const auto ovl = run_once(
        base_config(nodes, seed, kReplicas, KoshaConfig::MirrorMode::kOverlapped), single,
        &mirrors);
    mode_ms[0] = bg.makespan.to_millis();
    mode_ms[1] = seq.makespan.to_millis();
    mode_ms[2] = ovl.makespan.to_millis();
  }
  TextTable modes({"mirror mode (K=3)", "makespan (ms)", "vs background (ms)"});
  modes.add_row({"background", TextTable::fmt(mode_ms[0]), TextTable::fmt(0.0)});
  modes.add_row({"sequential (sum)", TextTable::fmt(mode_ms[1]),
                 TextTable::fmt(mode_ms[1] - mode_ms[0])});
  modes.add_row({"overlapped (max)", TextTable::fmt(mode_ms[2]),
                 TextTable::fmt(mode_ms[2] - mode_ms[0])});
  std::fputs(modes.to_string().c_str(), stdout);
  std::printf("\nmirror rpcs=%llu batches=%llu; per-batch wire time: sum=%.3f ms, "
              "max=%.3f ms\n(the overlapped run pays the max column, the sequential "
              "run the sum)\n\n",
              static_cast<unsigned long long>(mirrors.rpcs),
              static_cast<unsigned long long>(mirrors.batches),
              mirrors.sequential.to_millis(), mirrors.overlapped.to_millis());

  // --- Part 2: multi-client scaling ----------------------------------------
  TextTable scaling({"clients", "overlap makespan (ms)", "serial makespan (ms)", "speedup",
                     "mean op (us)", "failures"});
  struct Row {
    std::size_t clients;
    double overlap_ms;
    double serial_ms;
    double speedup;
  };
  std::vector<Row> rows;
  for (const std::size_t n : clients_list) {
    sim::WorkloadConfig wl = workload;
    wl.clients = n;
    wl.overlap = true;
    const auto over = run_once(base_config(nodes, seed, 1, KoshaConfig::MirrorMode::kBackground), wl);
    wl.overlap = false;
    const auto serial =
        run_once(base_config(nodes, seed, 1, KoshaConfig::MirrorMode::kBackground), wl);
    const double speedup =
        over.makespan.ns > 0
            ? serial.makespan.to_millis() / over.makespan.to_millis()
            : 0.0;
    rows.push_back({n, over.makespan.to_millis(), serial.makespan.to_millis(), speedup});
    scaling.add_row({std::to_string(n), TextTable::fmt(over.makespan.to_millis()),
                     TextTable::fmt(serial.makespan.to_millis()), TextTable::fmt(speedup) + "x",
                     TextTable::fmt(over.mean_op_us(), 1),
                     std::to_string(over.failures + serial.failures)});
  }
  std::fputs(scaling.to_string().c_str(), stdout);
  std::printf("\nSpeedup = serial/overlap: overlapping client timelines turn N clients'\n"
              "independent RPCs into concurrent in-flight work instead of a serial sum.\n");

  if (const std::string out = args.get_string("metrics-out", ""); !out.empty()) {
    std::ostringstream json;
    json << "{\n  \"seed\": " << seed << ",\n  \"nodes\": " << nodes << ",\n";
    json << "  \"mirror_modes\": {\"replicas\": " << kReplicas
         << ", \"background_ms\": " << mode_ms[0] << ", \"sequential_ms\": " << mode_ms[1]
         << ", \"overlapped_ms\": " << mode_ms[2] << ", \"mirror_rpcs\": " << mirrors.rpcs
         << ", \"batch_sum_ms\": " << mirrors.sequential.to_millis()
         << ", \"batch_max_ms\": " << mirrors.overlapped.to_millis() << "},\n";
    json << "  \"scaling\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i != 0) json << ", ";
      json << "{\"clients\": " << rows[i].clients << ", \"overlap_ms\": " << rows[i].overlap_ms
           << ", \"serial_ms\": " << rows[i].serial_ms << ", \"speedup\": " << rows[i].speedup
           << "}";
    }
    json << "]\n}\n";
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << json.str();
    std::printf("\nwrote %s\n", out.c_str());
  }

  if (const std::string out = args.get_string("profile-out", ""); !out.empty()) {
    const std::size_t profile_clients = clients_list.empty() ? 4 : clients_list.back();
    return write_profile_json(out, nodes, seed, workload, profile_clients);
  }
  return 0;
}

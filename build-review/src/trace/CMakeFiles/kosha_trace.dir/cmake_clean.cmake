file(REMOVE_RECURSE
  "CMakeFiles/kosha_trace.dir/availability.cpp.o"
  "CMakeFiles/kosha_trace.dir/availability.cpp.o.d"
  "CMakeFiles/kosha_trace.dir/fs_trace.cpp.o"
  "CMakeFiles/kosha_trace.dir/fs_trace.cpp.o.d"
  "CMakeFiles/kosha_trace.dir/mab.cpp.o"
  "CMakeFiles/kosha_trace.dir/mab.cpp.o.d"
  "libkosha_trace.a"
  "libkosha_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#pragma once

// POSIX-style file-descriptor layer over koshad.
//
// The paper's pitch is that Kosha "does not burden the user with the need
// to learn a new interface, and supports unmodified applications" (§1):
// applications keep calling open/read/write/close and the kernel's NFS
// client turns those into the RPCs koshad interposes on. This adapter
// plays the role of that POSIX surface for programs written against the
// library: descriptors with independent offsets over virtual handles.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "kosha/mount.hpp"

namespace kosha {

/// open(2)-style flags (subset).
enum OpenFlags : unsigned {
  kRdOnly = 0x0,
  kWrOnly = 0x1,
  kRdWr = 0x2,
  kCreate = 0x40,
  kTrunc = 0x200,
  kAppend = 0x400,
};

/// File descriptor handle; invalid() when an operation fails.
struct Fd {
  int value = -1;
  [[nodiscard]] bool valid() const { return value >= 0; }
};

enum class Whence { kSet, kCur, kEnd };

class PosixAdapter {
 public:
  explicit PosixAdapter(KoshaMount* mount) : mount_(mount) {}

  /// Open (optionally creating/truncating) a file. Returns an invalid Fd
  /// and sets last_error() on failure.
  [[nodiscard]] Fd open(std::string_view path, unsigned flags, std::uint32_t mode = 0644);

  /// Read up to `count` bytes at the descriptor's offset; advances it.
  /// Returns bytes read (0 at EOF) or -1 on error.
  [[nodiscard]] std::int64_t read(Fd fd, char* buffer, std::size_t count);

  /// Write `data` at the descriptor's offset (or the end with kAppend);
  /// advances it. Returns bytes written or -1.
  [[nodiscard]] std::int64_t write(Fd fd, std::string_view data);

  /// Reposition the offset; returns the new offset or -1.
  [[nodiscard]] std::int64_t lseek(Fd fd, std::int64_t offset, Whence whence);

  /// ftruncate(2).
  [[nodiscard]] bool ftruncate(Fd fd, std::uint64_t size);

  /// fstat(2)-lite.
  [[nodiscard]] nfs::NfsResult<fs::Attr> fstat(Fd fd);

  /// close(2). Returns false on a bad descriptor.
  bool close(Fd fd);

  /// unlink / mkdir / rmdir / rename convenience passthroughs.
  [[nodiscard]] bool unlink(std::string_view path);
  [[nodiscard]] bool mkdir(std::string_view path);
  [[nodiscard]] bool rmdir(std::string_view path);
  [[nodiscard]] bool rename(std::string_view from, std::string_view to);

  /// errno-equivalent: the NFS status of the last failing call.
  [[nodiscard]] nfs::NfsStat last_error() const { return last_error_; }

  [[nodiscard]] std::size_t open_files() const { return open_.size(); }

 private:
  struct OpenFile {
    VirtualHandle handle;
    std::uint64_t offset = 0;
    unsigned flags = 0;
  };

  OpenFile* lookup_fd(Fd fd);
  bool fail(nfs::NfsStat status) {
    last_error_ = status;
    return false;
  }

  KoshaMount* mount_;
  std::unordered_map<int, OpenFile> open_;
  int next_fd_ = 3;  // 0-2 are traditionally taken
  nfs::NfsStat last_error_ = nfs::NfsStat::kOk;
};

}  // namespace kosha

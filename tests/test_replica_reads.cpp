// Tests for the read-from-replicas extension (paper §4.2 future work).

#include <gtest/gtest.h>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

ClusterConfig config_with_replica_reads(unsigned replicas) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 1;
  config.kosha.replicas = replicas;
  config.kosha.read_from_replicas = true;
  config.seed = 23;
  return config;
}

TEST(ReplicaReads, ContentIdenticalFromAnyCopy) {
  KoshaCluster cluster(config_with_replica_reads(3));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/rr").ok());
  ASSERT_TRUE(mount.write_file("/rr/f", "same everywhere").ok());
  // Round-robin over 4 copies: read more times than copies.
  for (int i = 0; i < 12; ++i) {
    const auto content = mount.read_file("/rr/f");
    ASSERT_TRUE(content.ok()) << i;
    EXPECT_EQ(content.value(), "same everywhere");
  }
  EXPECT_GT(cluster.daemon(0).stats().replica_reads, 0u);
}

TEST(ReplicaReads, SeesFreshWrites) {
  KoshaCluster cluster(config_with_replica_reads(2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/w").ok());
  for (int version = 0; version < 6; ++version) {
    const std::string content = "v" + std::to_string(version);
    ASSERT_TRUE(mount.write_file("/w/f", content).ok());
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(mount.read_file("/w/f").value(), content) << version;
    }
  }
}

TEST(ReplicaReads, DisabledMeansNoReplicaTraffic) {
  ClusterConfig config = config_with_replica_reads(3);
  config.kosha.read_from_replicas = false;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/off").ok());
  ASSERT_TRUE(mount.write_file("/off/f", "x").ok());
  for (int i = 0; i < 10; ++i) (void)mount.read_file("/off/f");
  EXPECT_EQ(cluster.daemon(0).stats().replica_reads, 0u);
}

TEST(ReplicaReads, NoReplicasFallsBackToPrimary) {
  KoshaCluster cluster(config_with_replica_reads(0));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/k0").ok());
  ASSERT_TRUE(mount.write_file("/k0/f", "primary only").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(mount.read_file("/k0/f").value(), "primary only");
  }
  EXPECT_EQ(cluster.daemon(0).stats().replica_reads, 0u);
}

TEST(ReplicaReads, SurvivesReplicaFailure) {
  KoshaCluster cluster(config_with_replica_reads(2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/rf").ok());
  ASSERT_TRUE(mount.write_file("/rf/f", "durable").ok());
  // Kill one replica target of the primary.
  const auto vh = mount.resolve("/rf/f");
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  const auto targets = cluster.replicas(primary).targets();
  ASSERT_FALSE(targets.empty());
  const net::HostId victim = cluster.overlay().host_of(targets.front());
  if (victim != 0) {
    cluster.fail_node(victim);
    for (int i = 0; i < 10; ++i) {
      const auto content = mount.read_file("/rf/f");
      ASSERT_TRUE(content.ok()) << i;
      EXPECT_EQ(content.value(), "durable");
    }
  }
}

TEST(ReplicaReads, WorksAfterTruncateAndRewrite) {
  KoshaCluster cluster(config_with_replica_reads(3));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/t").ok());
  ASSERT_TRUE(mount.write_file("/t/f", std::string(10000, 'a')).ok());
  ASSERT_TRUE(mount.write_file("/t/f", "short").ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mount.read_file("/t/f").value(), "short");
  }
}

}  // namespace
}  // namespace kosha

// Seeded chaos soak: the cluster is driven through epochs of random
// message drops, host brownout storms, a network partition, and a
// crash/revive — all from deterministic fault schedules. Invariants:
// every operation eventually succeeds (the retry/DRC/failover machinery
// masks transient faults), each epoch ends with a clean audit, and two
// runs with the same seed are bit-identical.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "kosha/audit.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

/// Retry `op` on the virtual clock until it succeeds: transient windows
/// (brownouts, partitions) expire in virtual time, so bounded retries
/// distinguish "masked" from "lost".
bool eventually(SimClock& clock, const std::function<bool()>& op) {
  for (int tries = 0; tries < 50; ++tries) {
    if (op()) return true;
    clock.advance(SimDuration::millis(250));
  }
  return false;
}

TEST(ChaosSoak, ReplicatedClusterMasksFaults) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.seed = 1234;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));

  net::FaultPlanConfig fault;
  fault.seed = 99;
  fault.drop_probability = 0.02;
  fault.latency_spike_probability = 0.01;
  cluster.network().set_fault_plan(std::make_unique<net::FaultPlan>(fault));
  net::FaultPlan* plan = cluster.network().fault_plan();

  std::map<std::string, std::string> written;
  net::HostId crashed = net::kInvalidHost;
  for (int epoch = 0; epoch < 4; ++epoch) {
    SimClock& clock = cluster.clock();
    const SimDuration start = clock.now();
    switch (epoch) {
      case 0:
        break;  // background 2% drops only
      case 1:   // brownout storm: three staggered host stalls
        plan->add_brownout(1, start, start + SimDuration::seconds(1));
        plan->add_brownout(3, start + SimDuration::millis(200),
                           start + SimDuration::seconds(1.5));
        plan->add_brownout(5, start + SimDuration::millis(400),
                           start + SimDuration::seconds(2));
        break;
      case 2: {  // partition the client host away from every storage node
        std::vector<net::HostId> others;
        for (const net::HostId host : cluster.live_hosts()) {
          if (host != 0) others.push_back(host);
        }
        plan->add_partition({0}, others, start, start + SimDuration::millis(1500));
        break;
      }
      case 3:  // crash a node under load; revive it at epoch end
        crashed = cluster.live_hosts().back();
        cluster.fail_node(crashed);
        break;
    }

    for (int i = 0; i < 5; ++i) {
      const std::string dir = "/e" + std::to_string(epoch);
      const std::string file = dir + "/f" + std::to_string(i);
      const std::string content = "epoch" + std::to_string(epoch) + "-" + std::to_string(i);
      ASSERT_TRUE(eventually(clock, [&] { return mount.mkdir_p(dir).ok(); })) << file;
      ASSERT_TRUE(eventually(clock, [&] { return mount.write_file(file, content).ok(); }))
          << file;
      ASSERT_TRUE(eventually(clock,
                             [&] {
                               const auto back = mount.read_file(file);
                               return back.ok() && back.value() == content;
                             }))
          << file;
      written[file] = content;
    }

    if (epoch == 3 && crashed != net::kInvalidHost) cluster.revive_node(crashed);
    // Let every scheduled window expire before the epoch audit.
    clock.advance(SimDuration::seconds(3));
    const auto report = audit_cluster(cluster);
    EXPECT_TRUE(report.clean()) << "epoch " << epoch << ": " << report.to_string();
  }

  // Everything written during the soak is still readable and intact.
  for (const auto& [file, content] : written) {
    ASSERT_TRUE(eventually(cluster.clock(),
                           [&] {
                             const auto back = mount.read_file(file);
                             return back.ok() && back.value() == content;
                           }))
        << file;
  }

  const auto& net = cluster.network().stats();
  EXPECT_GT(net.drops, 0u);
  EXPECT_GT(net.retries, 0u);
  EXPECT_GT(net.partitioned, 0u);
  // The crash epoch forced at least one transparent handle failover.
  EXPECT_GE(cluster.daemon(0).stats().failovers, 1u);
}

TEST(ChaosSoak, DegradedReadsServeFromReplicasDuringBrownout) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.kosha.read_from_replicas = true;
  config.seed = 555;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));

  // Find a directory whose primary is a remote host (loopback traffic is
  // never judged by the fault plan, so a host-0 primary would hide the
  // brownout entirely).
  net::HostId primary = net::kInvalidHost;
  std::string file;
  for (int i = 0; i < 10 && primary == net::kInvalidHost; ++i) {
    const std::string dir = "/d" + std::to_string(i);
    ASSERT_TRUE(mount.mkdir_p(dir).ok());
    ASSERT_TRUE(mount.write_file(dir + "/f", "payload").ok());
    for (const net::HostId host : cluster.live_hosts()) {
      if (host == 0) continue;
      for (const auto& [anchor, name] : cluster.replicas(host).primaries()) {
        if (name == "d" + std::to_string(i)) {
          primary = host;
          file = dir + "/f";
        }
      }
    }
  }
  ASSERT_NE(primary, net::kInvalidHost);
  ASSERT_EQ(mount.read_file(file).value(), "payload");  // warm the caches

  // Stall the primary for far longer than any retry schedule can wait.
  auto plan = std::make_unique<net::FaultPlan>(net::FaultPlanConfig{});
  plan->add_brownout(primary, cluster.clock().now(),
                     cluster.clock().now() + SimDuration::seconds(60));
  cluster.network().set_fault_plan(std::move(plan));

  // A full round-robin cycle guarantees at least one read lands on the
  // primary's turn; that one must degrade to a replica copy, not fail.
  for (int i = 0; i < 4; ++i) {
    const auto back = mount.read_file(file);
    ASSERT_TRUE(back.ok()) << "read " << i;
    EXPECT_EQ(back.value(), "payload");
  }
  EXPECT_GE(cluster.daemon(0).stats().degraded_reads, 1u);
}

TEST(ChaosSoak, ZeroReplicasCannotMaskABrownout) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 0;
  config.kosha.read_from_replicas = true;  // nothing to read from with K=0
  config.seed = 555;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));

  net::HostId primary = net::kInvalidHost;
  std::string file;
  for (int i = 0; i < 10 && primary == net::kInvalidHost; ++i) {
    const std::string dir = "/d" + std::to_string(i);
    ASSERT_TRUE(mount.mkdir_p(dir).ok());
    ASSERT_TRUE(mount.write_file(dir + "/f", "payload").ok());
    for (const net::HostId host : cluster.live_hosts()) {
      if (host == 0) continue;
      for (const auto& [anchor, name] : cluster.replicas(host).primaries()) {
        if (name == "d" + std::to_string(i)) {
          primary = host;
          file = dir + "/f";
        }
      }
    }
  }
  ASSERT_NE(primary, net::kInvalidHost);
  ASSERT_EQ(mount.read_file(file).value(), "payload");

  const SimDuration window_end = cluster.clock().now() + SimDuration::seconds(60);
  auto plan = std::make_unique<net::FaultPlan>(net::FaultPlanConfig{});
  plan->add_brownout(primary, cluster.clock().now(), window_end);
  cluster.network().set_fault_plan(std::move(plan));

  // With no replicas there is no copy to degrade to: the read fails after
  // the full retry + failover ladder.
  EXPECT_FALSE(mount.read_file(file).ok());
  EXPECT_GE(cluster.daemon(0).stats().failed_failovers, 1u);
  EXPECT_EQ(cluster.daemon(0).stats().degraded_reads, 0u);

  // Availability returns when the brownout window expires.
  cluster.clock().advance(window_end + SimDuration::millis(1) - cluster.clock().now());
  EXPECT_EQ(mount.read_file(file).value(), "payload");
}

TEST(ChaosSoak, DeterministicUnderSeed) {
  struct Outcome {
    net::NetStats net;
    KoshadStats daemon0;
    std::string digest;
  };
  const auto run_chaos = [](std::uint64_t seed) -> Outcome {
    ClusterConfig config;
    config.nodes = 8;
    config.kosha.replicas = 2;
    config.seed = seed;
    KoshaCluster cluster(config);

    net::FaultPlanConfig fault;
    fault.seed = seed + 1;
    fault.drop_probability = 0.03;
    fault.latency_spike_probability = 0.02;
    auto plan = std::make_unique<net::FaultPlan>(fault);
    plan->add_brownout(2, SimDuration::millis(100), SimDuration::millis(1200));
    plan->add_partition({0}, {3, 4}, SimDuration::millis(1500), SimDuration::millis(2600));
    cluster.network().set_fault_plan(std::move(plan));

    KoshaMount mount(&cluster.daemon(0));
    Rng rng(seed ^ 0xC0FFEEull);
    for (int i = 0; i < 40; ++i) {
      const std::string dir = "/c" + std::to_string(rng.next_below(4));
      (void)mount.mkdir_p(dir);
      const std::string file = dir + "/f" + std::to_string(rng.next_below(5));
      switch (rng.next_below(3)) {
        case 0:
          (void)mount.write_file(file, rng.next_name(12));
          break;
        case 1:
          (void)mount.read_file(file);
          break;
        default:
          (void)mount.remove(file);
          break;
      }
    }
    return {cluster.network().stats(), cluster.daemon(0).stats(), audit_digest(cluster)};
  };

  const Outcome a = run_chaos(2024);
  const Outcome b = run_chaos(2024);
  EXPECT_TRUE(a.net == b.net);
  EXPECT_TRUE(a.daemon0 == b.daemon0);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_GT(a.net.drops, 0u);  // the schedule actually fired

  // A different seed must explore a different trajectory.
  const Outcome c = run_chaos(2025);
  EXPECT_FALSE(a.net == c.net);
}

TEST(ChaosSoak, EventLoopTraceIsByteIdenticalUnderSameSeed) {
  // The event-driven core must not just reach the same end state: with
  // observability on, two same-seed runs must serialise to byte-identical
  // trace and metrics output. Any hidden nondeterminism — hash ordering,
  // wall-clock leakage, unseeded tie-breaks in the event queue — shows up
  // here as a one-byte diff.
  struct Artifacts {
    std::string trace;
    std::string metrics;
    std::uint64_t events_executed;
  };
  const auto run_instrumented = [](std::uint64_t seed) -> Artifacts {
    ClusterConfig config;
    config.nodes = 8;
    config.kosha.replicas = 2;
    config.seed = seed;
    config.observability.metrics = true;
    config.observability.tracing = true;
    KoshaCluster cluster(config);

    net::FaultPlanConfig fault;
    fault.seed = seed + 1;
    fault.drop_probability = 0.03;
    fault.latency_spike_probability = 0.02;
    auto plan = std::make_unique<net::FaultPlan>(fault);
    plan->add_brownout(2, SimDuration::millis(100), SimDuration::millis(1200));
    cluster.network().set_fault_plan(std::move(plan));

    KoshaMount mount(&cluster.daemon(0));
    Rng rng(seed ^ 0xBEEFull);
    for (int i = 0; i < 30; ++i) {
      const std::string dir = "/t" + std::to_string(rng.next_below(3));
      (void)mount.mkdir_p(dir);
      const std::string file = dir + "/f" + std::to_string(rng.next_below(4));
      if (rng.next_below(2) == 0) {
        (void)mount.write_file(file, rng.next_name(10));
      } else {
        (void)mount.read_file(file);
      }
    }
    return {cluster.export_trace_jsonl(), cluster.export_metrics_json(),
            cluster.loop().stats().executed};
  };

  const Artifacts a = run_instrumented(4242);
  const Artifacts b = run_instrumented(4242);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_GT(a.events_executed, 0u);  // the event loop drove the run
  EXPECT_FALSE(a.trace.empty());

  // A different seed must change the recorded schedule.
  const Artifacts c = run_instrumented(4243);
  EXPECT_NE(a.trace, c.trace);
}

}  // namespace
}  // namespace kosha

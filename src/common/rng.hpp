#pragma once

// Deterministic random number generation.
//
// Every stochastic component of the reproduction (node-id assignment, trace
// synthesis, failure injection) draws from an explicitly seeded generator so
// experiments replay bit-for-bit. Monte-Carlo sweeps derive independent
// per-run streams with Rng::fork().

#include <cstdint>
#include <string>

#include "common/uint128.hpp"

namespace kosha {

/// SplitMix64 — used to expand seeds into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator: small, fast, and high quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Modulo bias is below 2^-53
  /// for the bounds used here; determinism is what matters.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Standard normal via Box-Muller (one value per call; simple and exact
  /// enough for trace synthesis).
  double next_gaussian();

  /// Uniform random 128-bit identifier.
  Uint128 next_id() { return {next_u64(), next_u64()}; }

  /// Independent child stream for run `index`.
  [[nodiscard]] Rng fork(std::uint64_t index) const {
    std::uint64_t sm = s_[0] ^ (s_[3] + 0x9E3779B97F4A7C15ull * (index + 1));
    return Rng(splitmix64(sm));
  }

  /// Random lowercase alphanumeric string of length n.
  std::string next_name(std::size_t n);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace kosha

#pragma once

// NFS-v3-like protocol types.
//
// Handles are opaque to clients: "they only have meaning to the NFS server"
// (paper §4.1.2). Kosha exploits exactly that opacity to interpose virtual
// handles, so the reproduction keeps handles strictly opaque too — clients
// never inspect the fields, only compare and pass them back.

#include <cstdint>
#include <string>
#include <vector>

#include "common/tracing.hpp"
#include "fs/storage_backend.hpp"
#include "net/sim_network.hpp"

namespace kosha::nfs {

/// Opaque file handle: identifies an inode generation on one server.
struct FileHandle {
  net::HostId server = net::kInvalidHost;
  fs::InodeId inode = fs::kInvalidInode;
  std::uint64_t generation = 0;

  [[nodiscard]] bool valid() const { return server != net::kInvalidHost && inode != 0; }
  friend bool operator==(const FileHandle&, const FileHandle&) = default;
};

/// NFS status codes: the local-FS vocabulary plus transport failure.
enum class NfsStat {
  kOk,
  kNoEnt,
  kExist,
  kNotDir,
  kIsDir,
  kNotEmpty,
  kNoSpace,
  kInval,
  kStale,
  kCorrupt,      // stored block failed hash verification on a CAS backend:
                 // the primary's copy is damaged — the failover ladder
                 // treats this as retryable so the read degrades to a
                 // replica while anti-entropy repairs the damage
  kUnreachable,  // RPC timeout before any request was delivered: the op
                 // certainly never executed (host down, server withdrawn,
                 // or every transmission lost in transit)
  kTimedOut,     // RPC abandoned after at least one delivered request: the
                 // op *may have executed* with its reply lost. Callers that
                 // re-issue a non-idempotent op after this status must be
                 // prepared to adopt an already-applied result.
  kOverloaded,   // request shed by overload control before execution: the
                 // server's admission bound bounced the arrival, the request's
                 // propagated deadline had already passed, or the client's own
                 // breaker/retry budget refused to offer more load. The op
                 // certainly did not execute *on this attempt* — but an
                 // earlier attempt of the same xid may have (the koshad
                 // ladder treats it as retryable and keeps its maybe-executed
                 // bookkeeping).
};

[[nodiscard]] const char* to_string(NfsStat status);

/// Map a local-FS error onto the wire status.
[[nodiscard]] NfsStat from_fs(fs::FsStatus status);

template <typename T>
using NfsResult = Result<T, NfsStat>;

/// Identity of one client RPC: who sent it and under which transaction id.
/// Retransmissions carry the same (client, xid, boot) triple; the server's
/// duplicate-request cache keys on it to recognize retried non-idempotent
/// requests whose first execution already succeeded.
struct RpcContext {
  net::HostId client = net::kInvalidHost;
  std::uint32_t xid = 0;
  /// Boot verifier (Sun-RPC style): distinguishes client incarnations. A
  /// revived client restarts its xid counter at 0, so without this a reused
  /// low xid could silently match a cached reply from the host's previous
  /// life still sitting in a server's duplicate-request cache.
  std::uint64_t boot = 0;
  /// Trace identity of the client operation this RPC serves (invalid when
  /// tracing is off). Carried so server-side spans parent under the RPC
  /// that caused them — this is the propagation step of distributed
  /// tracing. Not part of the DRC key: a retransmission may carry a
  /// different span id but is still the same request.
  TraceContext trace{};
  /// Absolute virtual-time deadline of the client *operation* this RPC
  /// serves (0 = none — the default, and always the value when overload
  /// control is disabled). Propagated so servers can refuse to execute
  /// work the client has already abandoned (kOverloaded before any DRC
  /// store). Like `trace`, NOT part of the DRC key: a retransmission may
  /// carry a refreshed deadline but is still the same request.
  SimDuration deadline{};

  [[nodiscard]] bool valid() const { return client != net::kInvalidHost; }
};

/// LOOKUP / CREATE / MKDIR / SYMLINK reply.
struct HandleReply {
  FileHandle handle;
  fs::Attr attr;
};

/// READ reply.
struct ReadReply {
  std::string data;
  bool eof = false;
};

/// READDIR reply entry (type included, as NFSv3 readdirplus would give).
struct ReaddirReply {
  std::vector<fs::DirEntry> entries;
};

/// FSSTAT reply — Kosha's redirection logic polls this (paper §3.3).
struct FsstatReply {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t used_bytes = 0;
  double utilization = 0.0;
};

}  // namespace kosha::nfs

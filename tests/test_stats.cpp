// RunningStats and percentile tests, including the parallel-merge property.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace kosha {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MergeEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.0);
  RunningStats c;
  a.merge(c);
  EXPECT_EQ(a.count(), 1u);
}

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, MergeMatchesSequential) {
  Rng rng(GetParam());
  RunningStats combined;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_gaussian() * 10 + 3;
    combined.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Values(21, 22, 23, 24));

TEST(Percentile, EdgesAndInterpolation) {
  const std::vector<double> values{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7}, 99), 7.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({30, 10, 40, 20}, 50), 25.0);
}

}  // namespace
}  // namespace kosha

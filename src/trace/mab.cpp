#include "trace/mab.hpp"

#include <algorithm>
#include <cmath>

namespace kosha::trace {

std::string mab_copy_path(const std::string& path) {
  auto parts = split_path(path);
  if (!parts.empty()) parts[0] += "c";
  return join_path(parts);
}

std::string mab_content(std::size_t size, std::uint64_t salt) {
  // Deterministic filler; cheap to generate, unique-ish per file.
  std::string out(size, '\0');
  std::uint64_t state = salt;
  for (std::size_t i = 0; i < size; i += 64) {
    out[i] = static_cast<char>('a' + (splitmix64(state) % 26));
  }
  return out;
}

MabWorkload generate_mab(const MabConfig& config) {
  Rng rng(config.seed);
  MabWorkload workload;

  struct Dir {
    std::string path;
    unsigned depth;
  };
  std::vector<Dir> dirs;
  dirs.reserve(config.total_dirs);

  for (std::size_t i = 0; i < config.top_dirs; ++i) {
    dirs.push_back({"/" + config.prefix + "_d" + std::to_string(i), 1});
  }
  while (dirs.size() < config.total_dirs) {
    // Attach a new subdirectory to a random existing directory that still
    // has room below the depth cap.
    const Dir& parent = dirs[rng.next_below(dirs.size())];
    if (parent.depth >= config.max_depth) continue;
    dirs.push_back(
        {parent.path + "/s" + std::to_string(dirs.size()), parent.depth + 1});
  }
  workload.directories.reserve(dirs.size());
  for (const auto& dir : dirs) workload.directories.push_back(dir.path);

  // Log-normal file sizes scaled to the configured total.
  std::vector<double> raw(config.files);
  double sum = 0;
  for (auto& value : raw) {
    value = std::exp(rng.next_gaussian() * 1.1 + 4.0);  // median ~55 "units"
    sum += value;
  }
  const double scale = static_cast<double>(config.total_bytes) / sum;

  workload.files.reserve(config.files);
  static constexpr const char* kExtensions[] = {".c", ".h", ".cpp", ".txt", ".mk"};
  for (std::size_t i = 0; i < config.files; ++i) {
    const Dir& dir = dirs[rng.next_below(dirs.size())];
    MabFile file;
    file.path = dir.path + "/f" + std::to_string(i) + kExtensions[i % 5];
    file.size = static_cast<std::uint32_t>(
        std::clamp(raw[i] * scale, 512.0, 4.0 * 1024 * 1024));
    workload.total_bytes += file.size;
    workload.files.push_back(std::move(file));
  }
  return workload;
}

}  // namespace kosha::trace

#pragma once

// NFS client: issues RPCs to servers across the simulated network.
//
// Destination selection uses the server id embedded in the (opaque) handle.
// Every call charges request and reply messages on the network. Two
// failure regimes are distinguished:
//   * hard-down — the host is marked dead (or its server was erased from
//     the directory, e.g. retirement): one timeout, kUnreachable, no
//     retries. This is the error Kosha's transparent fault handling reacts
//     to (paper §4.4).
//   * transient — the fault plan lost a message (drop/brownout/partition):
//     the client times out, backs off on the virtual clock, and
//     retransmits under the *same* xid up to RetryPolicy::max_attempts.
//     Non-idempotent retransmissions are made safe by the server's
//     duplicate-request cache (see nfs_server.hpp).
//
// When attempts run out the final status depends on what was delivered:
// kUnreachable if no request ever reached the server (the op certainly did
// not execute — safe to re-issue), kTimedOut if at least one did (the op
// may have executed with its reply lost — re-issuing a non-idempotent op
// requires adopting an already-applied result; see koshad's ladder).

#include <array>
#include <string_view>
#include <unordered_map>

#include "common/rng.hpp"
#include "nfs/nfs_server.hpp"
#include "nfs/retry_policy.hpp"
#include "nfs/wire.hpp"

namespace kosha {
class Counter;
class Histogram;
}  // namespace kosha

namespace kosha::nfs {

/// Host -> server registry (the simulation's stand-in for portmap/mountd).
class ServerDirectory {
 public:
  void add(NfsServer* server) { servers_[server->host()] = server; }
  void erase(net::HostId host) { servers_.erase(host); }
  [[nodiscard]] NfsServer* find(net::HostId host) const {
    const auto it = servers_.find(host);
    return it == servers_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<net::HostId, NfsServer*> servers_;
};

class NfsClient {
 public:
  /// `boot` is this client incarnation's verifier (see RpcContext::boot):
  /// give every restart of a host's client a value never used by that host
  /// before, so its restarted xid counter cannot match duplicate-request
  /// cache entries left over from the previous incarnation.
  NfsClient(net::SimNetwork* network, const ServerDirectory* directory, net::HostId self,
            RetryPolicy retry = {}, std::uint64_t jitter_seed = 0, std::uint64_t boot = 0);

  [[nodiscard]] net::HostId self() const { return self_; }
  [[nodiscard]] std::uint64_t boot() const { return boot_; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }

  /// Fetch the root handle of a server's export (MOUNT protocol stand-in).
  [[nodiscard]] NfsResult<FileHandle> mount(net::HostId server);

  [[nodiscard]] NfsResult<HandleReply> lookup(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<fs::Attr> getattr(FileHandle obj);
  [[nodiscard]] NfsResult<fs::Attr> set_mode(FileHandle obj, std::uint32_t mode);
  [[nodiscard]] NfsResult<fs::Attr> truncate(FileHandle obj, std::uint64_t size);
  [[nodiscard]] NfsResult<ReadReply> read(FileHandle file, std::uint64_t offset,
                                          std::uint32_t count);
  [[nodiscard]] NfsResult<std::uint32_t> write(FileHandle file, std::uint64_t offset,
                                               std::string_view data);
  [[nodiscard]] NfsResult<HandleReply> create(FileHandle dir, std::string_view name,
                                              std::uint32_t mode = 0644,
                                              std::uint32_t uid = 0);
  [[nodiscard]] NfsResult<HandleReply> mkdir(FileHandle dir, std::string_view name,
                                             std::uint32_t mode = 0755, std::uint32_t uid = 0);
  [[nodiscard]] NfsResult<HandleReply> symlink(FileHandle dir, std::string_view name,
                                               std::string_view target);
  [[nodiscard]] NfsResult<std::string> readlink(FileHandle link);
  [[nodiscard]] NfsResult<Unit> remove(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<Unit> rmdir(FileHandle dir, std::string_view name);
  /// Both directories must live on the same server (always true in Kosha:
  /// files in one directory share a node).
  [[nodiscard]] NfsResult<Unit> rename(FileHandle from_dir, std::string_view from_name,
                                       FileHandle to_dir, std::string_view to_name);
  [[nodiscard]] NfsResult<ReaddirReply> readdir(FileHandle dir);
  [[nodiscard]] NfsResult<FsstatReply> fsstat(net::HostId server);

 private:
  /// What happened to one request transmission.
  enum class SendOutcome {
    kSent,      // delivered; *out points at the server
    kLost,      // lost in transit (fault plan): worth retrying
    kHardDown,  // server dead or absent: fail fast, no retries
  };

  SendOutcome send_request(net::HostId server, std::size_t request_bytes, NfsServer** out);
  [[nodiscard]] bool deliver_reply(net::HostId server, std::size_t reply_bytes);
  /// Charge the exponential backoff (with jitter) before retry `attempt`.
  void backoff(unsigned attempt);

  /// Run one RPC through the full retry state machine. `invoke` performs
  /// the server-side procedure; `reply_bytes` sizes the reply message for
  /// the returned value. Wraps transact_impl with a per-procedure span and
  /// latency/outcome metrics when observability is on.
  template <typename ReplyT, typename Invoke, typename ReplyBytes>
  NfsResult<ReplyT> transact(NfsProc proc, net::HostId server, std::size_t request_bytes,
                             Invoke&& invoke, ReplyBytes&& reply_bytes);

  template <typename ReplyT, typename Invoke, typename ReplyBytes>
  NfsResult<ReplyT> transact_impl(std::size_t proc_slot, net::HostId server,
                                  std::size_t request_bytes, Invoke&& invoke,
                                  ReplyBytes&& reply_bytes);

  /// Lazily-resolved instruments for one procedure (null when metrics off).
  struct ProcMetrics {
    bool resolved = false;
    Histogram* latency = nullptr;
    Counter* ok = nullptr;
    Counter* error = nullptr;
  };
  [[nodiscard]] ProcMetrics& proc_metrics(NfsProc proc);

  /// RPC identity for a non-idempotent call, carrying the current trace
  /// context (invalid when tracing is off).
  [[nodiscard]] RpcContext rpc_ctx(std::uint32_t xid) const;

  std::uint32_t next_xid() { return ++xid_; }

  /// Replies are charged with a fixed header estimate plus payload; only
  /// the call direction is fully XDR-encoded (see nfs/wire.hpp).
  static constexpr std::size_t kReplyBytes = 96;

  net::SimNetwork* network_;
  const ServerDirectory* directory_;
  net::HostId self_;
  std::uint32_t xid_ = 0;
  std::uint64_t boot_ = 0;
  RetryPolicy retry_;
  Rng jitter_rng_;
  std::array<ProcMetrics, net::kNetProcSlots> proc_metrics_{};
};

}  // namespace kosha::nfs

#pragma once

// Cluster-wide consistency audit — the fsck of the reproduction.
//
// Walks a quiescent cluster and verifies the durable invariants the design
// relies on:
//   1. every registered anchor physically exists on its node, and that
//      node is the current ring owner of the anchor's key;
//   2. the whole virtual namespace resolves from a fresh client: every
//      special link leads to a live directory, every file is readable;
//   3. every replica target holds a byte-identical copy of each anchor
//      subtree (mirroring is synchronous, so no divergence is tolerable
//      unless a MIGRATION_NOT_COMPLETE flag marks it in-progress);
//   4. per-store byte accounting matches the actual content.
//
// Tests run the audit after churn; a production deployment would run it as
// a background scrubber.

#include <string>
#include <vector>

#include "kosha/cluster.hpp"

namespace kosha {

struct AuditReport {
  std::vector<std::string> issues;

  [[nodiscard]] bool clean() const { return issues.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Audit every live node and the virtual namespace. `client_host` is the
/// host whose daemon performs the namespace walk.
[[nodiscard]] AuditReport audit_cluster(KoshaCluster& cluster,
                                        net::HostId client_host = 0);

/// Hex SHA-1 fingerprint of the durable state of every live store: paths,
/// types, modes, owners, sizes, file bytes, and link targets, walked in
/// sorted order. Two clusters with identical on-disk state produce the
/// same digest — the determinism-guard tests compare chaos runs with it.
[[nodiscard]] std::string audit_digest(KoshaCluster& cluster);

}  // namespace kosha

#include "trace/availability.hpp"

#include "common/rng.hpp"

namespace kosha::trace {

std::size_t AvailabilityTrace::down_count(std::size_t hour) const {
  std::size_t count = 0;
  for (const bool status : up[hour]) {
    if (!status) ++count;
  }
  return count;
}

double AvailabilityTrace::mean_availability() const {
  std::uint64_t up_hours = 0;
  for (const auto& hour : up) {
    for (const bool status : hour) up_hours += status ? 1 : 0;
  }
  return static_cast<double>(up_hours) /
         (static_cast<double>(machines) * static_cast<double>(hours));
}

AvailabilityTrace generate_availability_trace(const AvailabilityConfig& config) {
  Rng rng(config.seed);
  AvailabilityTrace trace;
  trace.machines = config.machines;
  trace.hours = config.hours;
  trace.up.assign(config.hours, std::vector<bool>(config.machines, true));

  std::vector<bool> state(config.machines, true);
  std::vector<std::size_t> spike_victims;

  for (std::size_t h = 0; h < config.hours; ++h) {
    // Independent failure/recovery processes.
    for (std::size_t m = 0; m < config.machines; ++m) {
      if (state[m]) {
        if (rng.next_bool(config.hourly_failure_prob)) state[m] = false;
      } else {
        if (rng.next_bool(config.hourly_recovery_prob)) state[m] = true;
      }
    }
    // Correlated mass failure.
    if (h == config.spike_hour) {
      for (std::size_t m = 0; m < config.machines; ++m) {
        if (state[m] && rng.next_bool(config.spike_fraction)) {
          state[m] = false;
          spike_victims.push_back(m);
        }
      }
    }
    if (!spike_victims.empty() && h == config.spike_hour + config.spike_duration_hours) {
      for (const std::size_t m : spike_victims) state[m] = true;
      spike_victims.clear();
    }
    trace.up[h] = state;
  }
  return trace;
}

}  // namespace kosha::trace

#pragma once

// Pastry routing table: digits() rows of columns() entries.
//
// Row r holds nodes whose ids share exactly r leading digits with the
// owner; the column is the (r+1)-th digit of the stored node's id. Prefix
// routing resolves a key in O(log N) hops by fixing one digit per step.

#include <optional>
#include <vector>

#include "pastry/types.hpp"

namespace kosha::pastry {

class RoutingTable {
 public:
  RoutingTable(NodeId owner, const PastryConfig& config);

  [[nodiscard]] NodeId owner() const { return owner_; }

  /// Entry at (row, column); nullopt when empty.
  [[nodiscard]] std::optional<NodeId> entry(unsigned row, unsigned column) const;

  /// Offer a node id; stored if its slot is empty. Returns true if stored.
  /// (Proximity-based slot replacement is not modeled — the simulated LAN
  /// has uniform latency, so all candidates are equally good.)
  bool insert(NodeId id);

  /// Remove a (failed) node wherever it appears.
  bool remove(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const;

  /// The entry prefix-routing would forward a message for `key` to:
  /// row = shared prefix length, column = next digit of the key.
  [[nodiscard]] std::optional<NodeId> next_hop(Key key) const;

  /// All populated entries.
  [[nodiscard]] std::vector<NodeId> entries() const;

  [[nodiscard]] std::size_t size() const { return populated_; }

 private:
  [[nodiscard]] std::size_t slot_index(unsigned row, unsigned column) const;

  NodeId owner_;
  PastryConfig config_;
  std::vector<std::optional<NodeId>> slots_;  // digits() x columns(), row-major
  std::size_t populated_ = 0;
};

}  // namespace kosha::pastry

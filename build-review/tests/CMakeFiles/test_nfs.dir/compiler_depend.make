# Empty compiler generated dependencies file for test_nfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mount.dir/test_mount.cpp.o"
  "CMakeFiles/test_mount.dir/test_mount.cpp.o.d"
  "test_mount"
  "test_mount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Deterministic RNG behaviour: reproducibility, stream independence, and
// rough distribution sanity.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace kosha {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
  Rng rng2(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.next_bool(0.0));
    EXPECT_TRUE(rng2.next_bool(1.0));
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(7);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  const Rng base(42);
  Rng child_a = base.fork(0);
  Rng child_b = base.fork(1);
  Rng child_a2 = base.fork(0);
  int same_ab = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = child_a.next_u64();
    const auto b = child_b.next_u64();
    EXPECT_EQ(a, child_a2.next_u64());
    if (a == b) ++same_ab;
  }
  EXPECT_EQ(same_ab, 0);
}

TEST(Rng, NextIdUniqueInPractice) {
  Rng rng(8);
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next_id().to_hex());
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, NextNameCharsetAndLength) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const std::string name = rng.next_name(12);
    EXPECT_EQ(name.size(), 12u);
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
    }
  }
}

TEST(Rng, Uint64UniformAcrossNibbles) {
  Rng rng(10);
  int histogram[16] = {};
  const int n = 16000;
  for (int i = 0; i < n; ++i) ++histogram[rng.next_u64() >> 60];
  for (const int count : histogram) {
    EXPECT_NEAR(count, n / 16, n / 16 * 0.25);
  }
}

}  // namespace
}  // namespace kosha

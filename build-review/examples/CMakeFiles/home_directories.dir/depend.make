# Empty dependencies file for home_directories.
# This may be replaced when dependencies are built.

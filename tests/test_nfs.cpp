// NFS layer tests: handle opacity/staleness on the server, client-side
// network charging, unreachable-host behaviour, and protocol corner cases.

#include <gtest/gtest.h>

#include "nfs/nfs_client.hpp"

namespace kosha::nfs {
namespace {

struct Fixture {
  SimClock clock;
  net::SimNetwork network{{}, &clock};
  net::HostId client_host = network.add_host();
  net::HostId server_host = network.add_host();
  NfsServer server{server_host, {}, {}, &clock};
  ServerDirectory directory;
  NfsClient client{&network, &directory, client_host};

  Fixture() { directory.add(&server); }
};

TEST(NfsServer, RootHandleIsValid) {
  Fixture fx;
  const FileHandle root = fx.server.root_handle();
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.server, fx.server_host);
  const auto attr = fx.server.getattr(root);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, fs::FileType::kDirectory);
}

TEST(NfsServer, CreateWriteReadThroughHandles) {
  Fixture fx;
  const auto created = fx.server.create(fx.server.root_handle(), "f", 0644, 0);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(fx.server.write(created->handle, 0, "payload").ok());
  const auto data = fx.server.read(created->handle, 0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->data, "payload");
  EXPECT_TRUE(data->eof);
  const auto partial = fx.server.read(created->handle, 0, 3);
  EXPECT_EQ(partial->data, "pay");
  EXPECT_FALSE(partial->eof);
}

TEST(NfsServer, StaleHandleAfterRemove) {
  Fixture fx;
  const auto created = fx.server.create(fx.server.root_handle(), "f", 0644, 0);
  ASSERT_TRUE(fx.server.remove(fx.server.root_handle(), "f").ok());
  EXPECT_EQ(fx.server.getattr(created->handle).error(), NfsStat::kStale);
  EXPECT_EQ(fx.server.read(created->handle, 0, 1).error(), NfsStat::kStale);
}

TEST(NfsServer, HandleFromWrongServerIsStale) {
  Fixture fx;
  FileHandle foreign = fx.server.root_handle();
  foreign.server = 42;
  EXPECT_EQ(fx.server.getattr(foreign).error(), NfsStat::kStale);
}

TEST(NfsServer, ErrorMapping) {
  Fixture fx;
  const auto root = fx.server.root_handle();
  EXPECT_EQ(fx.server.lookup(root, "nope").error(), NfsStat::kNoEnt);
  (void)fx.server.mkdir(root, "d", 0755, 0);
  EXPECT_EQ(fx.server.mkdir(root, "d", 0755, 0).error(), NfsStat::kExist);
  const auto dir = fx.server.lookup(root, "d");
  (void)fx.server.create(dir->handle, "f", 0644, 0);
  EXPECT_EQ(fx.server.rmdir(root, "d").error(), NfsStat::kNotEmpty);
}

TEST(NfsServer, SetModeAndTruncate) {
  Fixture fx;
  const auto created = fx.server.create(fx.server.root_handle(), "f", 0644, 0);
  const auto chmod = fx.server.set_mode(created->handle, 0600);
  ASSERT_TRUE(chmod.ok());
  EXPECT_EQ(chmod->mode, 0600u);
  (void)fx.server.write(created->handle, 0, "abcdef");
  const auto truncated = fx.server.truncate(created->handle, 2);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->size, 2u);
}

TEST(NfsServer, SymlinkAndReadlink) {
  Fixture fx;
  const auto link = fx.server.symlink(fx.server.root_handle(), "l", "dir#3");
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(link->attr.type, fs::FileType::kSymlink);
  EXPECT_EQ(fx.server.readlink(link->handle).value(), "dir#3");
}

TEST(NfsServer, FsstatReportsCapacity) {
  Fixture fx;
  const auto created = fx.server.create(fx.server.root_handle(), "f", 0644, 0);
  (void)fx.server.write(created->handle, 0, std::string(1000, 'x'));
  const auto stat = fx.server.fsstat();
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->used_bytes, 1000u);
  EXPECT_GT(stat->capacity_bytes, 0u);
  EXPECT_GT(stat->utilization, 0.0);
}

TEST(NfsServer, ChargesServiceTimeOnClock) {
  Fixture fx;
  const auto before = fx.clock.now();
  (void)fx.server.create(fx.server.root_handle(), "f", 0644, 0);
  EXPECT_GT(fx.clock.now().ns, before.ns);
  EXPECT_GT(fx.server.rpc_count(), 0u);
}

// --- client ------------------------------------------------------------------

TEST(NfsClient, MountAndWalk) {
  Fixture fx;
  const auto root = fx.client.mount(fx.server_host);
  ASSERT_TRUE(root.ok());
  const auto made = fx.client.mkdir(*root, "home");
  ASSERT_TRUE(made.ok());
  const auto again = fx.client.lookup(*root, "home");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->handle, made->handle);
}

TEST(NfsClient, ChargesNetworkPerRpc) {
  Fixture fx;
  const auto root = fx.client.mount(fx.server_host);
  const auto msgs = fx.network.stats().messages;
  (void)fx.client.getattr(*root);
  EXPECT_EQ(fx.network.stats().messages, msgs + 2);  // request + reply
}

TEST(NfsClient, WritePayloadBytesCounted) {
  Fixture fx;
  const auto root = fx.client.mount(fx.server_host);
  const auto file = fx.client.create(*root, "f");
  const auto bytes = fx.network.stats().bytes;
  (void)fx.client.write(file->handle, 0, std::string(5000, 'x'));
  EXPECT_GE(fx.network.stats().bytes - bytes, 5000u);
}

TEST(NfsClient, UnreachableHostTimesOut) {
  Fixture fx;
  const auto root = fx.client.mount(fx.server_host);
  fx.network.set_up(fx.server_host, false);
  const auto before = fx.clock.now();
  EXPECT_EQ(fx.client.getattr(*root).error(), NfsStat::kUnreachable);
  EXPECT_GE((fx.clock.now() - before).ns, fx.network.config().rpc_timeout.ns);
  EXPECT_EQ(fx.network.stats().timeouts, 1u);
  // Recovery restores service.
  fx.network.set_up(fx.server_host, true);
  EXPECT_TRUE(fx.client.getattr(*root).ok());
}

TEST(NfsClient, UnknownServerUnreachable) {
  Fixture fx;
  EXPECT_EQ(fx.client.mount(77).error(), NfsStat::kUnreachable);
}

TEST(NfsClient, CrossServerRenameRejected) {
  Fixture fx;
  NfsServer other(fx.network.add_host(), {}, {}, &fx.clock);
  fx.directory.add(&other);
  const auto a = fx.client.mount(fx.server_host);
  const auto b = fx.client.mount(other.host());
  EXPECT_EQ(fx.client.rename(*a, "x", *b, "y").error(), NfsStat::kInval);
}

TEST(NfsClient, ReaddirThroughClient) {
  Fixture fx;
  const auto root = fx.client.mount(fx.server_host);
  (void)fx.client.create(*root, "a");
  (void)fx.client.mkdir(*root, "b");
  const auto listing = fx.client.readdir(*root);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->entries.size(), 2u);
}

TEST(NfsClient, RemoveAndRmdir) {
  Fixture fx;
  const auto root = fx.client.mount(fx.server_host);
  (void)fx.client.create(*root, "f");
  (void)fx.client.mkdir(*root, "d");
  EXPECT_TRUE(fx.client.remove(*root, "f").ok());
  EXPECT_TRUE(fx.client.rmdir(*root, "d").ok());
  EXPECT_EQ(fx.client.readdir(*root)->entries.size(), 0u);
}

TEST(NfsStatNames, AllDistinct) {
  EXPECT_STREQ(to_string(NfsStat::kOk), "NFS_OK");
  EXPECT_STREQ(to_string(NfsStat::kStale), "NFS3ERR_STALE");
  EXPECT_STREQ(to_string(NfsStat::kUnreachable), "NFS3ERR_UNREACHABLE");
  EXPECT_EQ(from_fs(fs::FsStatus::kNoSpace), NfsStat::kNoSpace);
  EXPECT_EQ(from_fs(fs::FsStatus::kOk), NfsStat::kOk);
}

}  // namespace
}  // namespace kosha::nfs

// XDR codec and NFS call-marshalling tests: RFC 4506 primitives, error
// handling, and full round-trips of every call encoder.

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "nfs/wire.hpp"
#include "nfs/xdr.hpp"

namespace kosha::nfs {
namespace {

TEST(Xdr, U32BigEndian) {
  XdrWriter writer;
  writer.put_u32(0x01020304);
  ASSERT_EQ(writer.size(), 4u);
  EXPECT_EQ(writer.data()[0], '\x01');
  EXPECT_EQ(writer.data()[3], '\x04');
  XdrReader reader(writer.data());
  EXPECT_EQ(reader.get_u32().value(), 0x01020304u);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Xdr, U64RoundTrip) {
  XdrWriter writer;
  writer.put_u64(0x0102030405060708ull);
  XdrReader reader(writer.data());
  EXPECT_EQ(reader.get_u64().value(), 0x0102030405060708ull);
}

TEST(Xdr, OpaquePaddingToFourBytes) {
  for (const std::size_t length : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u}) {
    XdrWriter writer;
    writer.put_opaque(std::string(length, 'x'));
    EXPECT_EQ(writer.size(), xdr_opaque_size(length)) << length;
    EXPECT_EQ(writer.size() % 4, 0u) << length;
    XdrReader reader(writer.data());
    EXPECT_EQ(reader.get_opaque().value(), std::string(length, 'x'));
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST(Xdr, BoolRoundTrip) {
  XdrWriter writer;
  writer.put_bool(true);
  writer.put_bool(false);
  XdrReader reader(writer.data());
  EXPECT_TRUE(reader.get_bool().value());
  EXPECT_FALSE(reader.get_bool().value());
}

TEST(Xdr, TruncatedReads) {
  XdrReader empty("");
  EXPECT_EQ(empty.get_u32().error(), XdrError::kTruncated);
  XdrReader partial("\x00\x00");
  EXPECT_EQ(partial.get_u32().error(), XdrError::kTruncated);
  // Opaque whose declared length exceeds the buffer.
  XdrWriter writer;
  writer.put_u32(100);
  XdrReader reader(writer.data());
  EXPECT_EQ(reader.get_opaque().error(), XdrError::kTruncated);
}

TEST(Xdr, OversizeOpaqueRejected) {
  XdrWriter writer;
  writer.put_opaque("0123456789");
  XdrReader reader(writer.data());
  EXPECT_EQ(reader.get_opaque(4).error(), XdrError::kOversize);
}

TEST(Xdr, NonZeroPaddingRejected) {
  XdrWriter writer;
  writer.put_opaque("abc");  // 1 padding byte
  std::string corrupted = writer.data();
  corrupted.back() = 'Z';
  XdrReader reader(corrupted);
  EXPECT_EQ(reader.get_opaque().error(), XdrError::kBadPadding);
}

TEST(Xdr, FixedRoundTrip) {
  const char payload[5] = {'a', 'b', 'c', 'd', 'e'};
  XdrWriter writer;
  writer.put_fixed(payload, sizeof(payload));
  EXPECT_EQ(writer.size() % 4, 0u);
  char out[5];
  XdrReader reader(writer.data());
  ASSERT_TRUE(reader.get_fixed(out, sizeof(out)).ok());
  EXPECT_EQ(std::memcmp(payload, out, 5), 0);
}

// --- wire-level call round-trips --------------------------------------------

FileHandle sample_handle(std::uint32_t seed) {
  return {seed, seed * 31 + 1, seed * 101 + 7};
}

TEST(Wire, HandleRoundTrip) {
  XdrWriter writer;
  encode_handle(writer, sample_handle(3));
  XdrReader reader(writer.data());
  EXPECT_EQ(decode_handle(reader).value(), sample_handle(3));
}

TEST(Wire, CallHeaderRoundTrip) {
  XdrWriter writer;
  encode_call_header(writer, 77, NfsProc::kWrite);
  XdrReader reader(writer.data());
  std::uint32_t xid = 0;
  EXPECT_EQ(decode_call_header(reader, &xid).value(), NfsProc::kWrite);
  EXPECT_EQ(xid, 77u);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Wire, DiropargsRoundTrip) {
  const std::string message = encode_diropargs_call(1, NfsProc::kLookup, sample_handle(9),
                                                    "filename.txt");
  XdrReader reader(message);
  EXPECT_EQ(decode_call_header(reader).value(), NfsProc::kLookup);
  const auto args = decode_diropargs(reader);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->dir, sample_handle(9));
  EXPECT_EQ(args->name, "filename.txt");
  EXPECT_TRUE(reader.exhausted());
}

TEST(Wire, CreateRoundTrip) {
  const std::string message =
      encode_create_call(2, NfsProc::kCreate, sample_handle(4), "f", 0640, 1001);
  XdrReader reader(message);
  EXPECT_EQ(decode_call_header(reader).value(), NfsProc::kCreate);
  const auto args = decode_create_args(reader);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->mode, 0640u);
  EXPECT_EQ(args->uid, 1001u);
}

TEST(Wire, SymlinkRoundTrip) {
  const std::string message = encode_symlink_call(3, sample_handle(5), "docs", "docs#2");
  XdrReader reader(message);
  EXPECT_EQ(decode_call_header(reader).value(), NfsProc::kSymlink);
  const auto args = decode_symlink_args(reader);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->name, "docs");
  EXPECT_EQ(args->target, "docs#2");
}

TEST(Wire, ReadWriteRoundTrip) {
  const std::string read_message = encode_read_call(4, sample_handle(6), 4096, 65536);
  XdrReader read_reader(read_message);
  (void)decode_call_header(read_reader);
  const auto read_args = decode_read_args(read_reader);
  ASSERT_TRUE(read_args.ok());
  EXPECT_EQ(read_args->offset, 4096u);
  EXPECT_EQ(read_args->count, 65536u);

  const std::string payload = "some file contents!";
  const std::string write_message = encode_write_call(5, sample_handle(7), 100, payload);
  XdrReader write_reader(write_message);
  (void)decode_call_header(write_reader);
  const auto write_args = decode_write_args(write_reader);
  ASSERT_TRUE(write_args.ok());
  EXPECT_EQ(write_args->offset, 100u);
  EXPECT_EQ(write_args->data, payload);
}

TEST(Wire, SetattrRoundTripBothShapes) {
  {
    const std::string message = encode_setattr_call(6, sample_handle(8), true, 0600, false, 0);
    XdrReader reader(message);
    (void)decode_call_header(reader);
    const auto args = decode_setattr_args(reader);
    ASSERT_TRUE(args.ok());
    EXPECT_TRUE(args->set_mode);
    EXPECT_EQ(args->mode, 0600u);
    EXPECT_FALSE(args->set_size);
  }
  {
    const std::string message = encode_setattr_call(7, sample_handle(8), false, 0, true, 999);
    XdrReader reader(message);
    (void)decode_call_header(reader);
    const auto args = decode_setattr_args(reader);
    ASSERT_TRUE(args.ok());
    EXPECT_FALSE(args->set_mode);
    EXPECT_TRUE(args->set_size);
    EXPECT_EQ(args->size, 999u);
  }
}

TEST(Wire, RenameRoundTrip) {
  const std::string message =
      encode_rename_call(8, sample_handle(1), "old", sample_handle(2), "new");
  XdrReader reader(message);
  (void)decode_call_header(reader);
  const auto args = decode_rename_args(reader);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->from_dir, sample_handle(1));
  EXPECT_EQ(args->from_name, "old");
  EXPECT_EQ(args->to_dir, sample_handle(2));
  EXPECT_EQ(args->to_name, "new");
}

TEST(Wire, WriteSizeMatchesPayload) {
  // Charged bytes grow with the payload, 4-byte aligned.
  const auto small = encode_write_call(9, sample_handle(1), 0, "ab").size();
  const auto large = encode_write_call(9, sample_handle(1), 0, std::string(1000, 'x')).size();
  EXPECT_EQ(large - small, 1000u - 4u);  // 1000 vs 2+2pad
  EXPECT_EQ(large % 4, 0u);
}

class XdrFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XdrFuzz, RandomOpaqueRoundTrips) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string data;
    const std::size_t length = rng.next_below(300);
    for (std::size_t b = 0; b < length; ++b) {
      data.push_back(static_cast<char>(rng.next_below(256)));
    }
    XdrWriter writer;
    writer.put_opaque(data);
    writer.put_u32(0xdeadbeef);
    XdrReader reader(writer.data());
    EXPECT_EQ(reader.get_opaque().value(), data);
    EXPECT_EQ(reader.get_u32().value(), 0xdeadbeefu);
  }
}

TEST_P(XdrFuzz, DecoderNeverCrashesOnGarbage) {
  Rng rng(GetParam() + 500);
  for (int i = 0; i < 200; ++i) {
    std::string garbage;
    const std::size_t length = rng.next_below(64);
    for (std::size_t b = 0; b < length; ++b) {
      garbage.push_back(static_cast<char>(rng.next_below(256)));
    }
    XdrReader reader(garbage);
    (void)decode_call_header(reader);
    (void)decode_diropargs(reader);
    (void)decode_write_args(reader);
    (void)decode_rename_args(reader);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XdrFuzz, ::testing::Values(61, 62, 63));

}  // namespace
}  // namespace kosha::nfs

#include "sim/concurrency_driver.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha::sim {

namespace {

/// Deterministic per-file content: depends only on (client, file, size).
std::string file_content(std::size_t client, std::size_t file, std::size_t bytes) {
  const std::string stamp =
      "c" + std::to_string(client) + "f" + std::to_string(file) + ":";
  std::string out;
  out.reserve(bytes);
  while (out.size() < bytes) {
    out.append(stamp, 0, std::min(stamp.size(), bytes - out.size()));
  }
  return out;
}

struct Client {
  std::unique_ptr<KoshaMount> mount;
  std::string root;       // "/u<c>"
  SimDuration local{};    // this client's virtual finish time so far
  std::size_t next_op = 0;
  std::size_t total_ops = 0;
  Rng zipf_rng{0};        // per-client popularity stream (zipf_s > 0 only)
};

}  // namespace

WorkloadResult run_multi_client_workload(KoshaCluster& cluster,
                                         const WorkloadConfig& config) {
  WorkloadResult result;
  const std::vector<net::HostId> hosts = cluster.live_hosts();
  if (config.clients == 0 || hosts.empty()) return result;

  SimClock& clock = cluster.clock();
  const SimDuration t0 = clock.now();
  const std::size_t ops_per_client =
      1 + config.files_per_client + config.files_per_client * config.reads_per_file;

  // Optional Zipf read popularity: one sampler, one forked stream per
  // client, both derived from the cluster seed. With zipf_s == 0 neither
  // exists and the read pass is the legacy round-robin — numerically
  // identical to runs predating the knob.
  const bool zipf = config.zipf_s > 0.0 && config.files_per_client > 0;
  const ZipfSampler popularity(zipf ? config.files_per_client : 1, config.zipf_s);
  const Rng zipf_root(cluster.config().seed ^ 0x5a1full);

  std::vector<Client> clients(config.clients);
  for (std::size_t c = 0; c < clients.size(); ++c) {
    clients[c].mount =
        std::make_unique<KoshaMount>(&cluster.daemon(hosts[c % hosts.size()]));
    clients[c].root = "/u" + std::to_string(c);
    clients[c].local = t0;
    clients[c].total_ops = ops_per_client;
    if (zipf) clients[c].zipf_rng = zipf_root.fork(c);
  }

  // Per-op virtual latency distribution (p50/p95/p99 for the scalability
  // sweep). Resolved once; null when metrics are off, so the loop below
  // pays one pointer test per op and nothing else.
  Histogram* op_latency = nullptr;
  if (MetricsRegistry* metrics = cluster.network().metrics(); metrics != nullptr) {
    op_latency = metrics->histogram("sim.op.latency_us");
  }

  // Conservative discrete-event interleaving: always advance the client
  // with the lowest local time (lowest index on ties), so storage-node
  // service queues see arrivals in timestamp order and the schedule is a
  // pure function of the cluster seed.
  SimDuration finish = t0;
  for (;;) {
    std::size_t pick = clients.size();
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (clients[c].next_op >= clients[c].total_ops) continue;
      if (pick == clients.size() || clients[c].local < clients[pick].local) pick = c;
    }
    if (pick == clients.size()) break;  // every client is done

    Client& cl = clients[pick];
    if (config.overlap) clock.set_now(cl.local);
    const SimDuration before = clock.now();

    const std::size_t op = cl.next_op++;
    const std::size_t c = pick;
    bool ok = false;
    if (op == 0) {
      ok = cl.mount->mkdir_p(cl.root).ok();
    } else if (op <= config.files_per_client) {
      const std::size_t file = op - 1;
      const std::string path = cl.root + "/f" + std::to_string(file);
      ok = cl.mount->write_file(path, file_content(c, file, config.file_bytes)).ok();
    } else {
      const std::size_t file =
          zipf ? popularity.sample(cl.zipf_rng)
               : (op - 1 - config.files_per_client) % config.files_per_client;
      const std::string path = cl.root + "/f" + std::to_string(file);
      const auto read = cl.mount->read_file(path);
      ok = read.ok() && read.value() == file_content(c, file, config.file_bytes);
    }

    const SimDuration took = clock.now() - before;
    cl.local = clock.now();
    if (cl.local > finish) finish = cl.local;
    ++result.ops;
    if (!ok) ++result.failures;
    result.busy += took;
    if (took > result.max_op) result.max_op = took;
    if (op_latency != nullptr) op_latency->record(took.to_micros());
  }

  // Leave the cluster clock at the workload's end: the latest client
  // finish when timelines overlapped (serial runs are already there).
  if (config.overlap) clock.set_now(finish);
  result.makespan = finish - t0;
  return result;
}

}  // namespace kosha::sim

#pragma once

// Kosha system-wide configuration (paper §3-§4).

#include <cstdint>
#include <string>

#include "common/sim_clock.hpp"
#include "fs/storage_backend.hpp"
#include "nfs/retry_policy.hpp"
#include "pastry/types.hpp"

namespace kosha {

struct KoshaConfig {
  /// Fixed cost of interposing one NFS RPC in koshad (four extra
  /// user/kernel crossings through the user-level loopback server, plus
  /// virtual-handle bookkeeping). This is the constant term I in the
  /// paper's overhead model D = I + H*hc*(N-1)/N (§6.1.2).
  SimDuration interposition_cost = SimDuration::micros(510);

  /// How many levels of subdirectories under /kosha are distributed to
  /// their own nodes (paper §3.2). Level 1 distributes only the direct
  /// children of the mount point.
  unsigned distribution_level = 1;

  /// K: number of additional replicas the primary maintains on its K
  /// closest leaf-set neighbors (paper §4.2). 0 = primary copy only.
  unsigned replicas = 1;

  /// How the K-target mirror fan-out charges virtual time:
  ///  * kBackground — fully off the critical path: the traffic is counted
  ///    but the foreground op is not delayed (the paper's model of
  ///    "asynchronous" mirroring; default).
  ///  * kSequential — one wire at a time: the foreground op pays the SUM
  ///    of the per-target costs (the old serial execution model).
  ///  * kOverlapped — all K mirrors in flight at once on the event-driven
  ///    core: the foreground op pays only the slowest target (MAX).
  /// See bench/concurrency_bench for the sum-vs-max comparison.
  enum class MirrorMode { kBackground, kSequential, kOverlapped };
  MirrorMode mirror_mode = MirrorMode::kBackground;

  /// Maximum salted-rehash attempts when the selected node is over the
  /// utilization threshold (paper §3.3, PAST-style iterative redirection).
  unsigned max_redirects = 4;

  /// Disk utilization fraction above which new directories are redirected.
  double redirect_threshold = 0.95;

  /// Serve reads round-robin from the primary and its replicas. The paper
  /// leaves this as future work ("we currently are exploring optimization
  /// techniques that allow at least read operations to be served from any
  /// one of the K replicas", §4.2); off by default to match the evaluated
  /// system. See bench/ablation_read_replicas.
  bool read_from_replicas = false;

  /// Failover ladder depth: how many re-resolve-and-retry rounds koshad
  /// runs after a retryable RPC error (each attempt already carries the
  /// NFS client's own retransmission schedule underneath). 1 reproduces
  /// the paper's retry-once behaviour; >1 survives a promotion racing a
  /// brownout.
  unsigned failover_rounds = 2;

  /// Per-daemon NFS client retry schedule (see nfs/retry_policy.hpp).
  /// Only transient fault-plan losses are retried, so without a fault
  /// plan this has no effect on behaviour or cost.
  nfs::RetryPolicy retry;

  /// Overload control (admission, retry budgets, breakers, deadline
  /// propagation, repair yielding). Disabled by default — and when
  /// disabled, every run is numerically identical to one predating the
  /// subsystem. See DESIGN's overload-control section.
  nfs::OverloadControlConfig overload;

  /// Seed for per-daemon jitter streams; KoshaCluster overwrites it with
  /// the cluster seed so chaos runs replay bit-for-bit.
  std::uint64_t rng_seed = 42;

  pastry::PastryConfig pastry;

  /// Which representation backs every node's /kosha_store partition and
  /// its CAS tuning knobs (chunk size, verified reads). Per-node capacity
  /// still comes from ClusterConfig; storage.fs.capacity_bytes is
  /// overridden per node at construction.
  fs::StorageConfig storage;

  /// Cross-field sanity checks; returns an error description, or an empty
  /// string when the configuration is usable. KoshaCluster refuses to
  /// construct on a non-empty result.
  [[nodiscard]] std::string validate() const {
    if (distribution_level == 0) {
      return "distribution_level must be >= 1: level 0 would hash no directory "
             "to any node, leaving the whole namespace on the root owner";
    }
    if (max_redirects == 0) {
      return "max_redirects must be >= 1: capacity redirection needs at least "
             "one salted rehash attempt (paper S3.3)";
    }
    if (replicas > pastry.leaf_half()) {
      return "replicas (" + std::to_string(replicas) +
             ") must not exceed the leaf-set half (" +
             std::to_string(pastry.leaf_half()) +
             "): replica targets are drawn from one leaf-set side (paper S4.2)";
    }
    if (redirect_threshold <= 0.0 || redirect_threshold > 1.0) {
      return "redirect_threshold must be in (0, 1]";
    }
    if (storage.chunk_bytes == 0) {
      return "storage.chunk_bytes must be >= 1: content-addressed stores "
             "cannot chunk files into zero-byte blocks";
    }
    if (storage.chunk_bytes > (64ull << 20)) {
      return "storage.chunk_bytes must be <= 64 MiB: larger chunks defeat "
             "dedup and the delta replica transfer entirely";
    }
    if (retry.response_timeout.ns < 0) {
      return "retry.response_timeout must be >= 0: negative patience would "
             "abandon every attempt before it was sent";
    }
    if (overload.op_budget.ns < 0) {
      return "overload.op_budget must be >= 0: a negative operation budget "
             "would stamp already-expired deadlines on every RPC";
    }
    if (overload.enabled) {
      if (overload.max_inflight == 0) {
        return "overload.max_inflight must be >= 1 when overload control is "
               "enabled: a zero admission bound would bounce every arrival";
      }
      if (overload.low_priority_fraction <= 0.0 || overload.low_priority_fraction > 1.0) {
        return "overload.low_priority_fraction must be in (0, 1]: background "
               "traffic needs a nonzero bound no looser than the foreground's";
      }
      if (overload.retry_budget_cap < 1.0) {
        return "overload.retry_budget_cap must be >= 1: a bucket that can "
               "never hold one token forbids all retransmissions";
      }
      if (overload.retry_budget_refill <= 0.0 ||
          overload.retry_budget_refill > overload.retry_budget_cap) {
        return "overload.retry_budget_refill must be in (0, retry_budget_cap]: "
               "zero refill starves retries forever, refill above the cap is "
               "unreachable";
      }
      if (overload.breaker_threshold > 0 && overload.breaker_cooldown.ns <= 0) {
        return "overload.breaker_cooldown must be > 0 when breakers are on: an "
               "instant cooldown makes the breaker a no-op";
      }
    }
    return {};
  }
};

}  // namespace kosha

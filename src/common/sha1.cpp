#include "common/sha1.hpp"

#include <cstring>

namespace kosha {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, unsigned n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_bytes_ = 0;
  buffer_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::string_view data) {
  total_bytes_ += data.size();
  const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t remaining = data.size();

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(remaining, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    remaining -= take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (remaining >= 64) {
    process_block(p);
    p += 64;
    remaining -= 64;
  }
  if (remaining > 0) {
    std::memcpy(buffer_.data(), p, remaining);
    buffer_len_ = remaining;
  }
}

std::array<std::uint8_t, 20> Sha1::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;

  // Append the 0x80 terminator, zero padding, and the 64-bit length.
  const std::uint8_t terminator = 0x80;
  update(std::string_view(reinterpret_cast<const char*>(&terminator), 1));
  total_bytes_ -= 1;  // padding does not count toward the message length
  static constexpr std::uint8_t zeros[64] = {};
  while (buffer_len_ != 56) {
    const std::size_t pad = (buffer_len_ < 56) ? 56 - buffer_len_ : 64 - buffer_len_;
    update(std::string_view(reinterpret_cast<const char*>(zeros), pad));
    total_bytes_ -= pad;
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::string_view(reinterpret_cast<const char*>(len_bytes), 8));

  std::array<std::uint8_t, 20> out{};
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

std::array<std::uint8_t, 20> Sha1::hash(std::string_view data) {
  Sha1 h;
  h.update(data);
  return h.digest();
}

Uint128 Sha1::hash128(std::string_view data) {
  const auto d = hash(data);
  std::array<std::uint8_t, 16> first{};
  std::memcpy(first.data(), d.data(), 16);
  return Uint128::from_bytes(first);
}

}  // namespace kosha

file(REMOVE_RECURSE
  "CMakeFiles/kosha_pastry.dir/leaf_set.cpp.o"
  "CMakeFiles/kosha_pastry.dir/leaf_set.cpp.o.d"
  "CMakeFiles/kosha_pastry.dir/overlay.cpp.o"
  "CMakeFiles/kosha_pastry.dir/overlay.cpp.o.d"
  "CMakeFiles/kosha_pastry.dir/ring.cpp.o"
  "CMakeFiles/kosha_pastry.dir/ring.cpp.o.d"
  "CMakeFiles/kosha_pastry.dir/routing_table.cpp.o"
  "CMakeFiles/kosha_pastry.dir/routing_table.cpp.o.d"
  "libkosha_pastry.a"
  "libkosha_pastry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_pastry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

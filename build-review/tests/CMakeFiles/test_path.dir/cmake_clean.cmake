file(REMOVE_RECURSE
  "CMakeFiles/test_path.dir/test_path.cpp.o"
  "CMakeFiles/test_path.dir/test_path.cpp.o.d"
  "test_path"
  "test_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// kosha_lint CLI — walk the repo's sources and enforce the determinism and
// RPC-protocol invariants described in DESIGN §7.
//
// Usage:
//   kosha_lint [--root=DIR] [--json[=FILE]] [paths...]
//
// With no paths, lints src/ tools/ bench/ tests/ under --root (default:
// the current directory). Paths may be files or directories; directories
// are walked recursively, skipping build trees and hidden directories.
// Exit status: 0 clean, 1 diagnostics found, 2 usage or I/O error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

namespace fs = std::filesystem;
using kosha::lint::Linter;

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  if (name.empty()) return false;
  if (name[0] == '.') return true;                 // .git and friends
  return name.rfind("build", 0) == 0 || name == "results";
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (Linter::is_cpp_source(root.string())) out.push_back(root);
    return;
  }
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied,
                                      ec);
  if (ec) return;
  for (const fs::recursive_directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec)) {
      if (skip_dir(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file(ec) && Linter::is_cpp_source(it->path().string())) {
      out.push_back(it->path());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::string json_file;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = arg.substr(7);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: kosha_lint [--root=DIR] [--json[=FILE]] [paths...]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "kosha_lint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench", "tests"};

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = fs::path(root) / p;
    std::error_code ec;
    if (!fs::exists(full, ec)) {
      std::fprintf(stderr, "kosha_lint: no such path: %s\n", full.string().c_str());
      return 2;
    }
    collect(full, files);
  }

  Linter linter;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "kosha_lint: cannot read %s\n", file.string().c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    // Report paths relative to --root so diagnostics are stable across
    // checkouts (and clickable from the repo root).
    const std::string rel =
        fs::path(file).lexically_relative(root).generic_string();
    linter.add_source(rel.empty() ? file.generic_string() : rel, content.str());
  }

  const auto diags = linter.run();
  std::fputs(kosha::lint::to_text(diags).c_str(), stdout);
  if (json) {
    const std::string report = kosha::lint::to_json(diags, linter.file_count());
    if (json_file.empty()) {
      std::fputs(report.c_str(), stdout);
    } else {
      std::ofstream out(json_file, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "kosha_lint: cannot write %s\n", json_file.c_str());
        return 2;
      }
      out << report;
    }
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "kosha_lint: %zu violation%s in %zu files scanned\n",
                 diags.size(), diags.size() == 1 ? "" : "s", linter.file_count());
  }
  return kosha::lint::exit_code(diags);
}

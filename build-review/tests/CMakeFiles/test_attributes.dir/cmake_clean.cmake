file(REMOVE_RECURSE
  "CMakeFiles/test_attributes.dir/test_attributes.cpp.o"
  "CMakeFiles/test_attributes.dir/test_attributes.cpp.o.d"
  "test_attributes"
  "test_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Ablation: cost of the replication factor. Replica mirroring is
// asynchronous (off the client's critical path), so the foreground MAB
// time barely moves with K — the price is paid in network bytes and disk
// (the write amplification is K+1). This quantifies the design choice the
// paper makes implicitly by fixing the replication factor to 1 in its
// performance tables while using 3 for availability.
//
// Flags: --runs N (default 3), --seed.

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "trace/mab.hpp"

int main(int argc, char** argv) {
  using namespace kosha;
  const CliArgs args(argc, argv);
  if (const auto err = args.check_known("runs,seed"); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::printf("Ablation: replication factor vs foreground time and traffic "
              "(MAB, 8 nodes, runs=%zu)\n\n", runs);

  TextTable table({"replicas", "MAB total (s)", "net GiB", "stored GiB",
                   "write amplification"});
  double baseline_bytes = 0;
  for (unsigned k = 0; k <= 4; ++k) {
    double total_s = 0;
    double net_bytes = 0;
    double stored_bytes = 0;
    for (std::size_t run = 0; run < runs; ++run) {
      ClusterConfig config;
      config.nodes = 8;
      config.kosha.distribution_level = 1;
      config.kosha.replicas = k;
      config.node_capacity_bytes = 64ull << 30;
      config.seed = seed + run * 1000;
      KoshaCluster cluster(config);
      KoshaMount mount(&cluster.daemon(0));

      trace::MabConfig mab;
      mab.seed = seed + run;
      mab.prefix = "r" + std::to_string(run);
      const auto workload = trace::generate_mab(mab);
      total_s += trace::run_mab(mount, workload, cluster.clock()).total();
      net_bytes += static_cast<double>(cluster.network().stats().bytes);
      for (const auto host : cluster.live_hosts()) {
        stored_bytes += static_cast<double>(cluster.server(host).store().used_bytes());
      }
    }
    total_s /= static_cast<double>(runs);
    net_bytes /= static_cast<double>(runs);
    stored_bytes /= static_cast<double>(runs);
    if (k == 0) baseline_bytes = stored_bytes;
    table.add_row({"K=" + std::to_string(k), TextTable::fmt(total_s, 2),
                   TextTable::fmt(net_bytes / (1ull << 30), 2),
                   TextTable::fmt(stored_bytes / (1ull << 30), 2),
                   TextTable::fmt(baseline_bytes > 0 ? stored_bytes / baseline_bytes : 1.0, 2) +
                       "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nForeground time is flat (mirroring is asynchronous); storage and\n"
              "network traffic scale with K+1 — the cost availability is bought with.\n");
  return 0;
}

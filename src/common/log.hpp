#pragma once

// Minimal leveled logger with a pluggable sink.
//
// Off by default; experiments enable kInfo for progress lines, tests enable
// kDebug when diagnosing a failure. Thread-safe: the level check is a
// relaxed atomic load (the fast path when a message is filtered out) and
// sink invocation is serialized under a mutex, so concurrent messages never
// interleave. Tests can install a capturing sink via set_log_sink instead
// of scraping stderr.

#include <cstdarg>
#include <functional>
#include <string_view>

namespace kosha {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] const char* log_level_name(LogLevel level);

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Receives every message that clears the level threshold. Called with the
/// formatted text (no trailing newline) while the logger's mutex is held,
/// so sinks need no locking of their own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replace the sink. An empty function restores the default sink, which
/// writes "[LEVEL] message\n" to stderr.
void set_log_sink(LogSink sink);

/// printf-style logging at `level`.
void log_message(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define KOSHA_LOG_DEBUG(...) ::kosha::log_message(::kosha::LogLevel::kDebug, __VA_ARGS__)
#define KOSHA_LOG_INFO(...) ::kosha::log_message(::kosha::LogLevel::kInfo, __VA_ARGS__)
#define KOSHA_LOG_WARN(...) ::kosha::log_message(::kosha::LogLevel::kWarn, __VA_ARGS__)
#define KOSHA_LOG_ERROR(...) ::kosha::log_message(::kosha::LogLevel::kError, __VA_ARGS__)

}  // namespace kosha

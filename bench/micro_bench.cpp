// Microbenchmarks of the substrates (google-benchmark): SHA-1 hashing,
// ring arithmetic, Pastry routing (hop counts scale O(log N)), local-FS
// metadata ops, and koshad placement resolution. Not a paper table —
// supporting data for the overhead discussion in §6.1.2.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "fs/local_fs.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "pastry/overlay.hpp"

namespace {

using namespace kosha;

void BM_Sha1Name(benchmark::State& state) {
  const std::string name = "some_directory_name";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash128(name));
  }
}
BENCHMARK(BM_Sha1Name);

void BM_Sha1Throughput(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(1 << 10)->Arg(1 << 16);

void BM_RingDistance(benchmark::State& state) {
  Rng rng(1);
  const Uint128 a = rng.next_id();
  const Uint128 b = rng.next_id();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring_distance(a, b));
  }
}
BENCHMARK(BM_RingDistance);

void BM_PastryRoute(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  SimClock clock;
  net::SimNetwork network({}, &clock);
  pastry::PastryOverlay overlay({}, &network);
  Rng rng(7);
  for (std::size_t i = 0; i < nodes; ++i) overlay.join(rng.next_id(), network.add_host());

  std::uint64_t hops = 0;
  std::uint64_t routes = 0;
  for (auto _ : state) {
    const auto result = overlay.route(0, rng.next_id());
    hops += result.hops;
    ++routes;
    benchmark::DoNotOptimize(result.owner);
  }
  state.counters["mean_hops"] =
      static_cast<double>(hops) / static_cast<double>(routes ? routes : 1);
}
BENCHMARK(BM_PastryRoute)->Arg(16)->Arg(128)->Arg(1024);

void BM_LocalFsCreate(benchmark::State& state) {
  fs::LocalFs store;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.create(store.root(), "f" + std::to_string(i++)));
  }
}
BENCHMARK(BM_LocalFsCreate);

void BM_KoshaWriteSmallFile(benchmark::State& state) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 2;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  if (!mount.mkdir_p("/bench/dir").ok()) return;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mount.write_file("/bench/dir/f" + std::to_string(i++), "payload"));
  }
}
BENCHMARK(BM_KoshaWriteSmallFile);

}  // namespace

BENCHMARK_MAIN();

# Empty dependencies file for concurrency_bench.
# This may be replaced when dependencies are built.

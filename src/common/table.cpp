#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace kosha {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line.append(width[c] - row[c].size(), ' ');
      line += row[c];
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c > 0 ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      line += row[c];
    }
    line += '\n';
    return line;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace kosha

# Empty compiler generated dependencies file for test_sims.
# This may be replaced when dependencies are built.

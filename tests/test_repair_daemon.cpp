// Anti-entropy repair daemon: the placement audit re-pushes lost replica
// copies (scrubbing survives even out-of-band store damage), the per-tick
// push budget rate-limits repair traffic, stale copies left by membership
// changes are reclaimed, and the continuous-churn soak converges with
// byte-identical same-seed runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "fs/storage_backend.hpp"
#include "kosha/audit.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "nfs/nfs_server.hpp"
#include "sim/availability_sim.hpp"

namespace kosha {
namespace {

/// CI re-runs this suite with KOSHA_TEST_BACKEND=cas to prove the whole
/// stack is backend-agnostic; default (unset/flat) runs are untouched.
void apply_test_backend(ClusterConfig* config) {
  fs::BackendKind backend = fs::BackendKind::kFlat;
  if (fs::parse_backend(env_or("KOSHA_TEST_BACKEND", "flat"), &backend)) {
    config->kosha.storage.backend = backend;
  }
}

ClusterConfig self_heal_config(std::size_t nodes, std::uint64_t seed) {
  ClusterConfig config;
  config.nodes = nodes;
  config.kosha.replicas = 2;
  config.kosha.distribution_level = 2;
  config.seed = seed;
  config.self_heal.enabled = true;
  apply_test_backend(&config);
  return config;
}

void run_for(KoshaCluster& cluster, SimDuration d) {
  cluster.loop().run_until_time(cluster.clock().now() + d);
}

/// Full store path of the file holding `content`, or empty.
std::string find_path(const fs::StorageBackend& store, fs::InodeId dir, const std::string& prefix,
                      const std::string& content) {
  const auto entries = store.readdir(dir);
  if (!entries.ok()) return {};
  for (const auto& entry : entries.value()) {
    const std::string path = prefix + "/" + entry.name;
    if (entry.type == fs::FileType::kDirectory) {
      if (auto found = find_path(store, entry.inode, path, content); !found.empty()) {
        return found;
      }
    } else if (entry.type == fs::FileType::kFile) {
      const auto data = store.read(entry.inode, 0, 1 << 20);
      if (data.ok() && data.value() == content) return path;
    }
  }
  return {};
}

/// Live hosts holding `content` anywhere in their store.
std::vector<net::HostId> holders(KoshaCluster& cluster, const std::string& content) {
  std::vector<net::HostId> held;
  for (const net::HostId host : cluster.live_hosts()) {
    const fs::StorageBackend& store = cluster.server(host).store();
    if (!find_path(store, store.root(), "", content).empty()) held.push_back(host);
  }
  return held;
}

/// Delete the whole anchor copy containing `content` from `host`'s store
/// (out-of-band damage: no RPC, no replica bookkeeping).
void vandalize_copy(KoshaCluster& cluster, net::HostId host, const std::string& content) {
  fs::StorageBackend& store = cluster.server(host).store();
  const std::string path = find_path(store, store.root(), "", content);
  ASSERT_FALSE(path.empty());
  // path = <hidden root>/<anchor dirs>/<file>; drop the file's directory —
  // the anchor copy — so the placement audit sees the hole.
  const auto file_slash = path.rfind('/');
  const std::string anchor_dir = path.substr(0, file_slash);
  const auto dir_slash = anchor_dir.rfind('/');
  const auto parent = store.resolve(anchor_dir.substr(0, dir_slash));
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(store.remove_recursive(parent.value(), anchor_dir.substr(dir_slash + 1)).ok());
}

TEST(RepairDaemon, ScrubRepairsOutOfBandReplicaLoss) {
  KoshaCluster cluster(self_heal_config(8, 81));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/rd/a").ok());
  const std::string content = "scrub-me-81";
  ASSERT_TRUE(mount.write_file("/rd/a/f", content).ok());

  auto held = holders(cluster, content);
  ASSERT_EQ(held.size(), 3u);  // primary + K replicas
  // Damage a *replica* copy (not the primary serving reads).
  const auto vh = mount.resolve("/rd/a/f");
  ASSERT_TRUE(vh.ok());
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  net::HostId victim = net::kInvalidHost;
  for (const net::HostId host : held) {
    if (host != primary) victim = host;
  }
  ASSERT_NE(victim, net::kInvalidHost);
  vandalize_copy(cluster, victim, content);
  ASSERT_EQ(holders(cluster, content).size(), 2u);

  // No membership change happens — only the anti-entropy audit can notice.
  run_for(cluster, SimDuration::seconds(3));
  EXPECT_EQ(holders(cluster, content).size(), 3u);
  std::uint64_t pushed = 0;
  for (const net::HostId host : cluster.live_hosts()) {
    if (const RepairDaemon* d = cluster.repair_daemon(host)) pushed += d->stats().pushed;
  }
  EXPECT_GT(pushed, 0u);
  const auto audit = audit_cluster(cluster);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(RepairDaemon, ZeroPushBudgetReportsButNeverRepairs) {
  ClusterConfig config = self_heal_config(8, 81);  // same seed: same layout
  config.self_heal.repair.max_pushes_per_tick = 0;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/rd/a").ok());
  const std::string content = "scrub-me-81";
  ASSERT_TRUE(mount.write_file("/rd/a/f", content).ok());

  const auto vh = mount.resolve("/rd/a/f");
  ASSERT_TRUE(vh.ok());
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  net::HostId victim = net::kInvalidHost;
  for (const net::HostId host : holders(cluster, content)) {
    if (host != primary) victim = host;
  }
  ASSERT_NE(victim, net::kInvalidHost);
  vandalize_copy(cluster, victim, content);

  run_for(cluster, SimDuration::seconds(3));
  // The audit keeps *seeing* the hole (missing is reported every pass) but
  // the zero budget forbids the repair push.
  EXPECT_EQ(holders(cluster, content).size(), 2u);
  const RepairDaemon* daemon = cluster.repair_daemon(primary);
  ASSERT_NE(daemon, nullptr);
  EXPECT_GT(daemon->stats().ticks, 0u);
  EXPECT_GE(daemon->stats().last_missing, 1u);
}

TEST(RepairDaemon, StaleCopiesAreReclaimedAfterMembershipChanges) {
  KoshaCluster cluster(self_heal_config(6, 83));
  KoshaMount mount(&cluster.daemon(0));
  std::vector<std::string> contents;
  for (int i = 0; i < 6; ++i) {
    const std::string dir = "/rd/m" + std::to_string(i % 2);
    ASSERT_TRUE(mount.mkdir_p(dir).ok());
    const std::string content = "member-" + std::to_string(i);
    ASSERT_TRUE(mount.write_file(dir + "/f" + std::to_string(i), content).ok());
    contents.push_back(content);
  }

  // Growing the ring shifts replica target sets; old targets keep hidden
  // copies their primaries no longer track until reclamation drops them.
  for (int i = 0; i < 4; ++i) (void)cluster.add_node();
  run_for(cluster, SimDuration::seconds(6));

  std::uint64_t dropped = 0;
  for (const net::HostId host : cluster.live_hosts()) {
    if (const RepairDaemon* d = cluster.repair_daemon(host)) dropped += d->stats().dropped;
  }
  for (const auto& content : contents) {
    EXPECT_EQ(holders(cluster, content).size(), 3u) << content;
  }
  const auto audit = audit_cluster(cluster);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
  // dropped may legitimately be zero if no target shifted for this seed;
  // the copy-count equality above is the real invariant. Record it anyway
  // so a regression that never reclaims shows up as a count drift.
  (void)dropped;
}

TEST(RepairDaemon, ChurnSoakConvergesAndIsByteIdentical) {
  sim::ChurnSimConfig config;
  config.nodes = 8;
  config.seed = 84;
  config.files = 8;
  config.min_live = 4;
  config.duration = SimDuration::seconds(4);
  config.mean_fail_interarrival = SimDuration::seconds(1.5);
  config.mean_join_interarrival = SimDuration::seconds(3);

  const auto first = sim::simulate_churn(config);
  EXPECT_TRUE(first.converged);
  EXPECT_EQ(first.detected, first.failures);
  EXPECT_EQ(first.final_durability_pct, 100.0);
  EXPECT_EQ(first.final_full_pct, 100.0);
  if (first.failures > 0) {
    EXPECT_GT(first.detect_ms_mean, 0.0);
  }

  const auto second = sim::simulate_churn(config);
  EXPECT_EQ(first.timeline_csv, second.timeline_csv);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.timeline.size(), second.timeline.size());

  config.seed = 85;  // a different seed steers a different soak
  const auto third = sim::simulate_churn(config);
  EXPECT_NE(first.timeline_csv, third.timeline_csv);
}

}  // namespace
}  // namespace kosha

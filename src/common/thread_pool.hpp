#pragma once

// Work-sharing thread pool and parallel_for.
//
// Monte-Carlo experiment sweeps (50-100 independent seeded runs in the
// paper) are embarrassingly parallel; parallel_for distributes run indices
// across a pool with a simple atomic counter. Each run owns its RNG stream,
// so results are independent of the schedule.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kosha {

/// Fixed-size thread pool executing queued tasks.
class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, count) across `threads` workers (0 = hardware
/// concurrency). Blocks until complete. Exceptions from the body terminate
/// (experiments treat a failed run as fatal).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace kosha

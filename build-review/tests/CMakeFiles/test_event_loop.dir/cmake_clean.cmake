file(REMOVE_RECURSE
  "CMakeFiles/test_event_loop.dir/test_event_loop.cpp.o"
  "CMakeFiles/test_event_loop.dir/test_event_loop.cpp.o.d"
  "test_event_loop"
  "test_event_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

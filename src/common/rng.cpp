#include "common/rng.hpp"

#include <cmath>

namespace kosha {

double Rng::next_gaussian() {
  // Box-Muller; discard the second value to keep the stream layout simple.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  constexpr double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

std::string Rng::next_name(std::size_t n) {
  static constexpr char alphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(alphabet[next_below(sizeof(alphabet) - 1)]);
  }
  return out;
}

}  // namespace kosha

#pragma once

// Flash-crowd / metastable-failure simulation (overload control A/B).
//
// Drives a live KoshaCluster with a closed-loop population of readers all
// hitting one hot anchor directory (every file under /hot lives on a single
// owner node), then injects a flash crowd: a burst of extra clients with
// near-zero think time for a bounded window. Client timelines interleave
// conservatively (lowest-local-time-first, exactly the concurrency_driver
// discipline), so the schedule is a pure function of the seed.
//
// The experiment exists to demonstrate the metastable failure mode and its
// cure (ISSUE: overload control):
//
//  * Uncontrolled (overload control disabled, but clients impatient —
//    RetryPolicy::response_timeout set): during the spike the hot node's
//    service queue grows past the point where every queued request is
//    abandoned by its sender before it executes. The server still executes
//    the abandoned copies (dead work), the senders retransmit on a tight
//    exponential schedule (retry amplification), and once dead work alone
//    exceeds capacity the collapse is self-sustaining: goodput stays pinned
//    near zero long after the spike ends. The trigger is gone; the failure
//    stays — the definition of a metastable failure.
//
//  * Controlled (same workload, same retry schedule, overload control on):
//    deadline-aware admission bounces arrivals that cannot be served before
//    the sender gives up, the service loop drops queued work whose deadline
//    passed (refusing dead work instead of executing it), retry budgets cap
//    the retransmission amplification factor, and circuit breakers fail the
//    hopeless clients fast. The system sheds during the spike — spike
//    clients see kOverloaded, not slow service — and returns to baseline
//    goodput within a bounded window of the spike ending.
//
// Determinism: two same-seed runs produce byte-identical timeline CSVs and
// digests (asserted by tests/test_overload and the overload-soak CI job).

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "nfs/retry_policy.hpp"

namespace kosha::sim {

struct FlashCrowdConfig {
  std::size_t nodes = 4;
  unsigned replicas = 1;
  /// Hot set: files under the single hot anchor, read with Zipf(zipf_s)
  /// popularity (rank 0 hottest).
  std::size_t hot_files = 8;
  std::size_t file_bytes = 16 * 1024;
  double zipf_s = 1.1;

  /// Steady-state population: closed-loop readers active for the whole
  /// run, think time between ops.
  std::size_t base_clients = 24;
  SimDuration base_think = SimDuration::millis(25);

  /// The flash crowd: extra readers active only in [spike_start,
  /// spike_end), with a much shorter think time.
  std::size_t spike_clients = 60;
  SimDuration spike_think = SimDuration::millis(2);
  SimDuration spike_start = SimDuration::seconds(3);
  SimDuration spike_end = SimDuration::seconds(5);

  /// Total measured run length and the goodput-accounting window.
  SimDuration duration = SimDuration::seconds(12);
  SimDuration window = SimDuration::millis(500);

  std::uint64_t seed = 1;

  /// Client impatience, shared by both arms: per-transmission abandonment
  /// after response_timeout, tight exponential backoff. This is what makes
  /// the uncontrolled system *able* to collapse — patient clients (the
  /// legacy infinite-wait schedule) queue instead of retransmitting.
  nfs::RetryPolicy retry{
      .max_attempts = 4,
      .initial_backoff = SimDuration::millis(1),
      .multiplier = 2.0,
      .max_backoff = SimDuration::millis(4),
      .jitter = 0.25,
      .response_timeout = SimDuration::millis(6),
  };

  /// false: overload control off (the metastable arm). true: the knobs
  /// below are installed cluster-wide (enabled is forced on).
  bool controlled = false;
  nfs::OverloadControlConfig overload{
      .enabled = true,
      .max_inflight = 8,
      .low_priority_fraction = 0.5,
      .retry_budget_cap = 8.0,
      .retry_budget_refill = 0.1,
      .breaker_threshold = 6,
      .breaker_cooldown = SimDuration::millis(100),
      .op_budget = SimDuration::millis(30),
      .repair_yield_inflight = 4,
  };
};

struct FlashCrowdWindow {
  SimDuration start{};  // relative to measurement start
  std::size_t ok = 0;
  std::size_t failed = 0;
};

struct FlashCrowdResult {
  std::vector<FlashCrowdWindow> windows;

  /// Mean successful ops per window before the spike (first window skipped
  /// as warm-up), during the spike, and over the final post-spike windows.
  double baseline_ops = 0;
  double spike_ops = 0;
  double post_ops = 0;
  /// post_ops / baseline_ops: < 0.5 is the ISSUE's collapse criterion,
  /// >= 0.95 its recovery criterion.
  double post_over_baseline = 0;

  /// Recovery: the earliest post-spike window from which goodput stays at
  /// >= 95% of baseline through the end of the run. recovery_after_spike
  /// is the virtual time from spike_end to the end of that window (or to
  /// the end of the run when the system never recovers).
  bool recovered = false;
  SimDuration recovery_after_spike{};

  std::size_t ops_ok = 0;
  std::size_t ops_failed = 0;

  // Network-level overload counters (NetStats).
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t admission_rejected = 0;
  std::uint64_t deadline_rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed_low_priority = 0;
  std::uint64_t inflight_peak = 0;

  // Client- and daemon-level counters, summed over nodes.
  std::uint64_t overloaded_replies = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t server_deadline_rejects = 0;
  std::uint64_t ladder_deadline_aborts = 0;

  /// Deterministic serializations for same-seed byte-identity checks.
  std::string timeline_csv;
  std::string digest;
};

/// Run one arm (config.controlled selects which). Builds its own cluster.
[[nodiscard]] FlashCrowdResult simulate_flash_crowd(const FlashCrowdConfig& config);

}  // namespace kosha::sim

#include "kosha/mount.hpp"

#include "common/metrics.hpp"
#include "common/path.hpp"
#include "common/tracing.hpp"

namespace kosha {

namespace {

/// Per-operation instrumentation at the POSIX/mount seam — where a client
/// operation begins, so this is where traces are minted. Opens a root span
/// named `op` (e.g. "mount.write_file") tagged with the path, and records
/// the operation's virtual-clock latency into `<op>.latency_us`. Inert
/// (no allocation, no clock reads) when observability is off.
struct MountOp {
  MountOp(Runtime& rt, const char* op, std::string_view path, net::HostId host)
      : clock(rt.clock),
        hist(rt.metrics == nullptr ? nullptr
                                   : rt.metrics->histogram(std::string(op) + ".latency_us")),
        span(rt.tracer, op, host),
        start(hist == nullptr ? SimDuration{} : clock->now()) {
    if (span.active()) span.tag("path", path);
  }

  template <typename R>
  R finish(R result) {
    if (hist != nullptr) hist->record((clock->now() - start).to_micros());
    if (!result.ok()) span.status(nfs::to_string(result.error()));
    return result;
  }

  SimClock* clock;
  Histogram* hist;
  SpanScope span;
  SimDuration start;
};

}  // namespace

void KoshaMount::invalidate(std::string_view path) {
  const std::string normalized = normalize_path(path);
  // kosha-lint: allow(unordered-iter): erase-sweep — survivors independent of visit order
  for (auto it = handle_cache_.begin(); it != handle_cache_.end();) {
    if (path_is_within(it->first, normalized)) {
      it = handle_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

nfs::NfsResult<VirtualHandle> KoshaMount::resolve(std::string_view path) {
  const std::string normalized = normalize_path(path);
  if (const auto it = handle_cache_.find(normalized); it != handle_cache_.end()) {
    return it->second;
  }
  MountOp op(daemon_->runtime(), "mount.resolve", path, daemon_->host());
  auto current = daemon_->root();
  if (!current.ok()) return op.finish(current);
  std::string prefix;
  for (const auto& component : split_path(normalized)) {
    prefix += '/';
    prefix += component;
    const auto next = daemon_->lookup(*current, component);
    if (!next.ok()) return op.finish(nfs::NfsResult<VirtualHandle>(next.error()));
    handle_cache_[prefix] = next->handle;
    current = next->handle;
  }
  return op.finish(current);
}

nfs::NfsResult<std::pair<VirtualHandle, std::string>> KoshaMount::parent_of(
    std::string_view path) {
  const std::string normalized = normalize_path(path);
  if (normalized.empty() || normalized == "/") return nfs::NfsStat::kInval;
  const auto parent = resolve(path_parent(normalized));
  if (!parent.ok()) return parent.error();
  return std::make_pair(*parent, path_basename(normalized));
}

nfs::NfsResult<VirtualHandle> KoshaMount::mkdir_p(std::string_view path) {
  MountOp op(daemon_->runtime(), "mount.mkdir_p", path, daemon_->host());
  return op.finish(mkdir_p_impl(path));
}

nfs::NfsResult<VirtualHandle> KoshaMount::mkdir_p_impl(std::string_view path) {
  auto current = daemon_->root();
  if (!current.ok()) return current;
  std::string prefix;
  for (const auto& component : split_path(path)) {
    prefix += '/';
    prefix += component;
    if (const auto it = handle_cache_.find(prefix); it != handle_cache_.end()) {
      current = it->second;
      continue;
    }
    auto next = daemon_->lookup(*current, component);
    if (next.ok()) {
      if (next->attr.type != fs::FileType::kDirectory) return nfs::NfsStat::kNotDir;
      handle_cache_[prefix] = next->handle;
      current = next->handle;
      continue;
    }
    if (next.error() != nfs::NfsStat::kNoEnt) return next.error();
    const auto made = daemon_->mkdir(*current, component);
    if (!made.ok()) return made.error();
    handle_cache_[prefix] = made->handle;
    current = made->handle;
  }
  return current;
}

nfs::NfsResult<Unit> KoshaMount::write_file(std::string_view path, std::string_view content) {
  MountOp op(daemon_->runtime(), "mount.write_file", path, daemon_->host());
  return op.finish(write_file_impl(path, content));
}

nfs::NfsResult<Unit> KoshaMount::write_file_impl(std::string_view path,
                                                 std::string_view content) {
  const auto parent = parent_of(path);
  if (!parent.ok()) return parent.error();
  const auto& [dir, name] = parent.value();

  auto file = daemon_->lookup(dir, name);
  if (!file.ok()) {
    if (file.error() != nfs::NfsStat::kNoEnt) return file.error();
    file = daemon_->create(dir, name);
    if (!file.ok()) return file.error();
  } else if (file->attr.type != fs::FileType::kFile) {
    return nfs::NfsStat::kIsDir;
  } else if (const auto truncated = daemon_->truncate(file->handle, 0); !truncated.ok()) {
    return truncated.error();
  }
  handle_cache_[normalize_path(path)] = file->handle;
  const auto written = daemon_->write(file->handle, 0, content);
  if (!written.ok()) return written.error();
  return Unit{};
}

nfs::NfsResult<std::string> KoshaMount::read_file(std::string_view path) {
  MountOp op(daemon_->runtime(), "mount.read_file", path, daemon_->host());
  return op.finish(read_file_impl(path));
}

nfs::NfsResult<std::string> KoshaMount::read_file_impl(std::string_view path) {
  const auto file = resolve(path);
  if (!file.ok()) return file.error();
  std::string out;
  constexpr std::uint32_t kChunk = 64 * 1024;
  for (;;) {
    const auto chunk = daemon_->read(*file, out.size(), kChunk);
    if (!chunk.ok()) return chunk.error();
    out += chunk->data;
    if (chunk->eof || chunk->data.empty()) break;
  }
  return out;
}

nfs::NfsResult<fs::Attr> KoshaMount::stat(std::string_view path) {
  MountOp op(daemon_->runtime(), "mount.stat", path, daemon_->host());
  return op.finish(stat_impl(path));
}

nfs::NfsResult<fs::Attr> KoshaMount::stat_impl(std::string_view path) {
  const auto handle = resolve(path);
  if (!handle.ok()) return handle.error();
  auto attr = daemon_->getattr(*handle);
  if (!attr.ok() && attr.error() == nfs::NfsStat::kStale) {
    // The cached dentry pointed at a removed object: revalidate from
    // scratch, like the kernel's NFS client would.
    invalidate(path);
    const auto fresh = resolve(path);
    if (!fresh.ok()) return fresh.error();
    attr = daemon_->getattr(*fresh);
  }
  return attr;
}

bool KoshaMount::exists(std::string_view path) { return stat(path).ok(); }

nfs::NfsResult<std::vector<fs::DirEntry>> KoshaMount::list(std::string_view path) {
  MountOp op(daemon_->runtime(), "mount.list", path, daemon_->host());
  const auto handle = resolve(path);
  if (!handle.ok()) return op.finish(nfs::NfsResult<std::vector<fs::DirEntry>>(handle.error()));
  const auto listing = daemon_->readdir(*handle);
  if (!listing.ok()) return op.finish(nfs::NfsResult<std::vector<fs::DirEntry>>(listing.error()));
  return op.finish(nfs::NfsResult<std::vector<fs::DirEntry>>(listing->entries));
}

nfs::NfsResult<Unit> KoshaMount::remove(std::string_view path) {
  MountOp op(daemon_->runtime(), "mount.remove", path, daemon_->host());
  const auto parent = parent_of(path);
  if (!parent.ok()) return op.finish(nfs::NfsResult<Unit>(parent.error()));
  invalidate(path);
  return op.finish(daemon_->remove(parent->first, parent->second));
}

nfs::NfsResult<Unit> KoshaMount::rmdir(std::string_view path) {
  MountOp op(daemon_->runtime(), "mount.rmdir", path, daemon_->host());
  const auto parent = parent_of(path);
  if (!parent.ok()) return op.finish(nfs::NfsResult<Unit>(parent.error()));
  invalidate(path);
  return op.finish(daemon_->rmdir(parent->first, parent->second));
}

nfs::NfsResult<Unit> KoshaMount::remove_all(std::string_view path) {
  MountOp op(daemon_->runtime(), "mount.remove_all", path, daemon_->host());
  const auto parent = parent_of(path);
  if (!parent.ok()) return op.finish(nfs::NfsResult<Unit>(parent.error()));
  invalidate(path);
  return op.finish(daemon_->remove_tree(parent->first, parent->second));
}

nfs::NfsResult<Unit> KoshaMount::rename(std::string_view from, std::string_view to) {
  MountOp op(daemon_->runtime(), "mount.rename", from, daemon_->host());
  const auto from_parent = parent_of(from);
  if (!from_parent.ok()) return op.finish(nfs::NfsResult<Unit>(from_parent.error()));
  const auto to_parent = parent_of(to);
  if (!to_parent.ok()) return op.finish(nfs::NfsResult<Unit>(to_parent.error()));
  invalidate(from);
  invalidate(to);
  return op.finish(daemon_->rename(from_parent->first, from_parent->second, to_parent->first,
                                   to_parent->second));
}

}  // namespace kosha

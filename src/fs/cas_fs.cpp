#include "fs/cas_fs.hpp"

#include <algorithm>

#include "common/sha1.hpp"

namespace kosha::fs {

namespace {
constexpr std::uint64_t kMinChunk = 1;
}  // namespace

CasFs::CasFs(const StorageConfig& config)
    : LocalFs(config.fs),
      chunk_bytes_(std::max(kMinChunk, config.chunk_bytes)),
      verify_reads_(config.verify_reads) {}

std::uint64_t CasFs::file_content_bytes(InodeId id) const {
  const auto it = manifests_.find(id);
  return it == manifests_.end() ? 0 : it->second.size;
}

void CasFs::release(InodeId id) {
  drop_manifest(id);
  LocalFs::release(id);
}

void CasFs::ref_block(const BlockId& id, std::string_view bytes) {
  Block& block = blocks_[id];
  if (block.refs == 0) {
    block.bytes.assign(bytes);
    physical_bytes_ += bytes.size();
  } else if (block.bytes != bytes) {
    // The address is the hash of the *correct* bytes, so a mismatch means
    // the stored copy was corrupted after the fact; writing the same
    // content again heals it in place.
    block.bytes.assign(bytes);
  }
  ++block.refs;
}

void CasFs::unref_block(const BlockId& id) {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return;
  if (--it->second.refs == 0) {
    physical_bytes_ -= it->second.bytes.size();
    blocks_.erase(it);
  }
}

void CasFs::drop_manifest(InodeId id) {
  const auto it = manifests_.find(id);
  if (it == manifests_.end()) return;
  for (const BlockId& block : it->second.blocks) unref_block(block);
  sub_used_bytes(it->second.size);
  manifests_.erase(it);
}

std::string CasFs::materialize(const Manifest& manifest) const {
  std::string content;
  content.reserve(manifest.size);
  for (const BlockId& id : manifest.blocks) {
    const auto it = blocks_.find(id);
    if (it != blocks_.end()) content.append(it->second.bytes);
  }
  content.resize(manifest.size, '\0');  // belt-and-braces on a lost block
  return content;
}

void CasFs::set_content(InodeId id, const std::string& content) {
  Manifest next;
  next.size = content.size();
  next.blocks.reserve((content.size() + chunk_bytes_ - 1) / chunk_bytes_);
  for (std::uint64_t offset = 0; offset < content.size(); offset += chunk_bytes_) {
    const std::string_view chunk =
        std::string_view(content).substr(offset, chunk_bytes_);
    const BlockId block = Sha1::hash(chunk);
    ref_block(block, chunk);
    next.blocks.push_back(block);
  }
  drop_manifest(id);
  add_used_bytes(next.size);
  if (next.size != 0) manifests_[id] = std::move(next);
}

FsResult<Unit> CasFs::truncate(InodeId inode, std::uint64_t size) {
  const Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  if (n->type != FileType::kFile) return FsStatus::kIsDir;
  const std::uint64_t current = file_content_bytes(inode);
  if (size > current && would_exceed(size - current)) return FsStatus::kNoSpace;
  const auto it = manifests_.find(inode);
  std::string content = it == manifests_.end() ? std::string{} : materialize(it->second);
  content.resize(size, '\0');
  set_content(inode, content);
  get(inode)->mtime = next_mtime();
  return Unit{};
}

FsResult<std::uint32_t> CasFs::write(InodeId inode, std::uint64_t offset,
                                     std::string_view data) {
  const Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  if (n->type != FileType::kFile) return FsStatus::kIsDir;
  const std::uint64_t current = file_content_bytes(inode);
  const std::uint64_t end = offset + data.size();
  if (end > current && would_exceed(end - current)) return FsStatus::kNoSpace;
  const auto it = manifests_.find(inode);
  std::string content = it == manifests_.end() ? std::string{} : materialize(it->second);
  if (end > content.size()) content.resize(end, '\0');
  std::copy(data.begin(), data.end(), content.begin() + static_cast<std::ptrdiff_t>(offset));
  set_content(inode, content);
  get(inode)->mtime = next_mtime();
  return static_cast<std::uint32_t>(data.size());
}

FsResult<std::string> CasFs::read(InodeId inode, std::uint64_t offset,
                                  std::uint32_t count) const {
  const Inode* n = get(inode);
  if (n == nullptr) return FsStatus::kStale;
  if (n->type != FileType::kFile) return FsStatus::kIsDir;
  const auto it = manifests_.find(inode);
  const std::uint64_t size = it == manifests_.end() ? 0 : it->second.size;
  if (offset >= size) return std::string{};
  const std::uint64_t end = std::min<std::uint64_t>(size, offset + count);
  std::string out;
  out.reserve(end - offset);
  for (std::uint64_t chunk = offset / chunk_bytes_; chunk * chunk_bytes_ < end; ++chunk) {
    const BlockId& id = it->second.blocks[chunk];
    const auto block = blocks_.find(id);
    if (block == blocks_.end() ||
        (verify_reads_ && Sha1::hash(block->second.bytes) != id)) {
      ++verify_failures_;
      return FsStatus::kCorrupt;
    }
    const std::uint64_t chunk_start = chunk * chunk_bytes_;
    const std::uint64_t from = offset > chunk_start ? offset - chunk_start : 0;
    const std::uint64_t to =
        std::min<std::uint64_t>(block->second.bytes.size(), end - chunk_start);
    if (to > from) out.append(block->second.bytes, from, to - from);
  }
  return out;
}

void CasFs::purge() {
  LocalFs::purge();
  blocks_.clear();
  manifests_.clear();
  physical_bytes_ = 0;
  verify_failures_ = 0;
}

StorageStats CasFs::stats() const {
  StorageStats stats;
  stats.dedup_bytes = used_bytes() - physical_bytes_;
  stats.blocks_live = blocks_.size();
  stats.verify_failures = verify_failures_;
  return stats;
}

std::vector<BlockRef> CasFs::file_blocks(InodeId inode) const {
  const auto it = manifests_.find(inode);
  if (it == manifests_.end()) return {};
  std::vector<BlockRef> out;
  out.reserve(it->second.blocks.size());
  for (const BlockId& id : it->second.blocks) {
    const auto block = blocks_.find(id);
    const std::uint32_t bytes =
        block == blocks_.end() ? 0 : static_cast<std::uint32_t>(block->second.bytes.size());
    out.push_back({id, bytes});
  }
  return out;
}

bool CasFs::has_block(const BlockId& id) const {
  // A resident-but-corrupt block does not count as held: delta transfers
  // must ship (and heal) it.
  const auto it = blocks_.find(id);
  return it != blocks_.end() && Sha1::hash(it->second.bytes) == id;
}

std::uint64_t CasFs::verify_inode(InodeId id) const {
  const auto it = manifests_.find(id);
  if (it == manifests_.end()) return 0;
  std::uint64_t corrupt = 0;
  for (const BlockId& block : it->second.blocks) {
    const auto stored = blocks_.find(block);
    if (stored == blocks_.end() || Sha1::hash(stored->second.bytes) != block) ++corrupt;
  }
  return corrupt;
}

std::uint64_t CasFs::verify_walk(InodeId id) const {
  const auto attr = getattr(id);
  if (!attr.ok()) return 0;
  if (attr->type == FileType::kFile) return verify_inode(id);
  if (attr->type != FileType::kDirectory) return 0;
  std::uint64_t corrupt = 0;
  const auto listing = readdir(id);
  if (!listing.ok()) return 0;
  for (const DirEntry& entry : listing.value()) corrupt += verify_walk(entry.inode);
  return corrupt;
}

std::uint64_t CasFs::verify_subtree(std::string_view path) const {
  const auto inode = resolve(path);
  if (!inode.ok()) return 0;
  return verify_walk(inode.value());
}

bool CasFs::corrupt_file_block(InodeId inode, std::size_t chunk_index) {
  const auto it = manifests_.find(inode);
  if (it == manifests_.end() || chunk_index >= it->second.blocks.size()) return false;
  const auto block = blocks_.find(it->second.blocks[chunk_index]);
  if (block == blocks_.end() || block->second.bytes.empty()) return false;
  block->second.bytes[0] = static_cast<char>(block->second.bytes[0] ^ 0x01);
  return true;
}

}  // namespace kosha::fs

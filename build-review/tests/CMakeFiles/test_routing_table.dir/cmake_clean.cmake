file(REMOVE_RECURSE
  "CMakeFiles/test_routing_table.dir/test_routing_table.cpp.o"
  "CMakeFiles/test_routing_table.dir/test_routing_table.cpp.o.d"
  "test_routing_table"
  "test_routing_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

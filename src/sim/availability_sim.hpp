#pragma once

// Availability simulation (paper Figure 7).
//
// Distributes the departmental trace across a machine population, replays
// an 840-hour availability trace, and measures the percentage of files
// reachable each hour for replica counts 0..4. Files are grouped by their
// anchor directory (everything in one anchor lives and dies with the same
// K+1 holders); a group is unavailable while all of its holders are down
// and is re-replicated onto live ring neighbors as soon as any holder is
// reachable again, matching Kosha's continuous replica maintenance (§4.2).

#include <cstdint>
#include <vector>

#include "trace/availability.hpp"
#include "trace/fs_trace.hpp"

namespace kosha::sim {

struct AvailabilitySimConfig {
  unsigned level = 3;  // paper: distribution level fixed at 3
  unsigned replicas = 3;
  std::size_t runs = 10;  // paper: 100 node-id assignments
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  /// Hours a freshly created replica takes before it can serve (copying
  /// an anchor's content over the LAN is not instantaneous). A copy whose
  /// source machines all fail within the window is lost with them; 0 =
  /// instantaneous repair.
  std::size_t repair_hours = 0;
};

struct AvailabilityResult {
  /// Percentage of files available per hour, averaged over runs.
  std::vector<double> available_pct;
  double average_pct = 0;
  double min_pct = 100;
  std::size_t min_hour = 0;
};

[[nodiscard]] AvailabilityResult simulate_availability(const trace::FsTrace& fs_trace,
                                                       const trace::AvailabilityTrace& machines,
                                                       const AvailabilitySimConfig& config);

}  // namespace kosha::sim
